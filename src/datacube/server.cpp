#include "datacube/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/log.hpp"
#include "ncio/ncfile.hpp"
#include "obs/obs.hpp"

namespace climate::datacube {
namespace {
constexpr const char* kLogTag = "datacube";
}

Result<ReduceOp> parse_reduce_op(const std::string& name) {
  if (name == "max") return ReduceOp::kMax;
  if (name == "min") return ReduceOp::kMin;
  if (name == "sum") return ReduceOp::kSum;
  if (name == "avg" || name == "mean") return ReduceOp::kAvg;
  if (name == "std") return ReduceOp::kStd;
  if (name == "count") return ReduceOp::kCount;
  return Status::InvalidArgument("unknown reduce operation '" + name + "'");
}

Result<InterOp> parse_inter_op(const std::string& name) {
  if (name == "add") return InterOp::kAdd;
  if (name == "sub") return InterOp::kSub;
  if (name == "mul") return InterOp::kMul;
  if (name == "div") return InterOp::kDiv;
  if (name == "mask") return InterOp::kMask;
  return Status::InvalidArgument("unknown intercube operation '" + name + "'");
}

Server::Server(std::size_t io_servers) { set_io_servers(io_servers); }

void Server::set_io_servers(std::size_t count) {
  count = std::max<std::size_t>(1, count);
  std::lock_guard<std::mutex> lock(mutex_);
  if (count == io_servers_) return;
  pool_ = std::make_unique<common::ThreadPool>(count);
  io_servers_ = count;
}

std::size_t Server::io_servers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_servers_;
}

void Server::run_fragments(std::size_t count, const std::function<void(std::size_t)>& fn) {
  common::ThreadPool* pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pool = pool_.get();
  }
  pool->parallel_for(count, fn);
}

std::string Server::register_cube(CubeData cube) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string pid = "oph://local/datacube/" + std::to_string(next_id_++);
  catalog_[pid] = std::make_shared<const CubeData>(std::move(cube));
  creation_order_.push_back(pid);
  ++stats_.cubes_created;
  return pid;
}

Result<std::shared_ptr<const CubeData>> Server::lookup(const std::string& pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = catalog_.find(pid);
  if (it == catalog_.end()) {
    OBS_COUNTER_ADD("datacube.catalog_misses", 1);
    return Status::NotFound("no datacube '" + pid + "'");
  }
  OBS_COUNTER_ADD("datacube.catalog_hits", 1);
  return it->second;
}

Result<std::string> Server::importnc(const std::string& path, const std::string& variable,
                                     const ImportOptions& options) {
  OBS_SPAN("datacube", "importnc");
  OBS_SCOPED_LATENCY("datacube.op_ns.importnc");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto reader = ncio::FileReader::open(path);
  if (!reader.ok()) return reader.status();

  auto info = reader->var_info(variable);
  if (!info.ok()) return info.status();
  if (info->dim_ids.empty()) return Status::InvalidArgument("variable '" + variable + "' is a scalar");

  auto values = reader->read_floats(variable);
  if (!values.ok()) return values.status();

  CubeData cube;
  cube.measure = variable;
  cube.description = "importnc(" + path + ")";

  // Identify the implicit dimension: the named one, or the last.
  std::size_t implicit_index = info->dim_ids.size() - 1;
  if (!options.implicit_dim.empty()) {
    bool found = false;
    for (std::size_t d = 0; d < info->dim_ids.size(); ++d) {
      if (reader->dims()[info->dim_ids[d]].name == options.implicit_dim) {
        implicit_index = d;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("implicit dimension '" + options.implicit_dim + "' not in variable");
    }
    if (implicit_index != info->dim_ids.size() - 1) {
      return Status::Unimplemented("implicit dimension must be the variable's last dimension");
    }
  }

  auto dim_coords = [&](const std::string& name) -> std::vector<double> {
    auto coord = reader->var_info(name);
    if (!coord.ok() || coord->dim_ids.size() != 1) return {};
    auto v = reader->read_doubles(name);
    if (!v.ok()) return {};
    return std::move(*v);
  };

  for (std::size_t d = 0; d < info->dim_ids.size(); ++d) {
    const ncio::Dim& dim = reader->dims()[info->dim_ids[d]];
    DimInfo di{dim.name, dim.length, dim_coords(dim.name)};
    if (d == implicit_index) {
      cube.implicit_dim = std::move(di);
    } else {
      cube.explicit_dims.push_back(std::move(di));
    }
  }

  std::size_t nfragments = options.nfragments;
  std::size_t nservers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nservers = io_servers_;
    stats_.disk_reads += 1;
    stats_.disk_bytes_read += values->size() * sizeof(float);
  }
  OBS_COUNTER_ADD("datacube.disk_bytes_read", values->size() * sizeof(float));
  if (nfragments == 0) nfragments = nservers;

  const std::size_t alen = cube.array_length();
  cube.fragments = make_fragments(cube.row_count(), alen, nfragments, nservers);
  for (Fragment& frag : cube.fragments) {
    std::memcpy(frag.values.data(), values->data() + frag.row_start * alen,
                frag.values.size() * sizeof(float));
  }
  LOG_DEBUG(kLogTag) << "importnc " << path << ":" << variable << " -> " << cube.element_count()
                     << " elements in " << cube.fragments.size() << " fragments";
  return register_cube(std::move(cube));
}

Result<std::string> Server::create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                                        DimInfo implicit_dim, const std::vector<float>& dense,
                                        std::string description) {
  std::size_t rows = 1;
  for (const DimInfo& d : explicit_dims) rows *= d.size;
  if (dense.size() != rows * implicit_dim.size) {
    return Status::InvalidArgument("create_cube: buffer has " + std::to_string(dense.size()) +
                                   " elements, expected " + std::to_string(rows * implicit_dim.size));
  }
  std::size_t nservers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nservers = io_servers_;
  }
  CubeData cube = cube_from_dense(std::move(measure), std::move(explicit_dims),
                                  std::move(implicit_dim), dense, nservers, nservers);
  cube.description = std::move(description);
  return register_cube(std::move(cube));
}

Status Server::exportnc(const std::string& pid, const std::string& path) {
  OBS_SPAN("datacube", "exportnc");
  OBS_SCOPED_LATENCY("datacube.op_ns.exportnc");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& cube = **cube_result;

  auto writer = ncio::FileWriter::create(path);
  if (!writer.ok()) return writer.status();

  std::vector<std::string> dim_names;
  for (const DimInfo& dim : cube.explicit_dims) {
    auto id = writer->def_dim(dim.name, dim.size);
    if (!id.ok()) return id.status();
    dim_names.push_back(dim.name);
  }
  const bool has_implicit = cube.array_length() > 1;
  if (has_implicit) {
    auto id = writer->def_dim(cube.implicit_dim.name, cube.implicit_dim.size);
    if (!id.ok()) return id.status();
    dim_names.push_back(cube.implicit_dim.name);
  }
  // Coordinate variables.
  auto def_coord = [&](const DimInfo& dim) -> Status {
    if (dim.coords.empty()) return Status::Ok();
    auto id = writer->def_var(dim.name, ncio::DType::kFloat64, {dim.name});
    return id.ok() ? Status::Ok() : id.status();
  };
  for (const DimInfo& dim : cube.explicit_dims) CLIMATE_RETURN_IF_ERROR(def_coord(dim));
  if (has_implicit) CLIMATE_RETURN_IF_ERROR(def_coord(cube.implicit_dim));

  auto var_id = writer->def_var(cube.measure, ncio::DType::kFloat32, dim_names);
  if (!var_id.ok()) return var_id.status();
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("", "source", std::string("climate_datacube exportnc")));
  CLIMATE_RETURN_IF_ERROR(writer->put_attr(cube.measure, "description", cube.description));
  CLIMATE_RETURN_IF_ERROR(writer->end_def());

  for (const DimInfo& dim : cube.explicit_dims) {
    if (!dim.coords.empty()) {
      CLIMATE_RETURN_IF_ERROR(writer->put_var(dim.name, dim.coords.data(), dim.coords.size()));
    }
  }
  if (has_implicit && !cube.implicit_dim.coords.empty()) {
    CLIMATE_RETURN_IF_ERROR(
        writer->put_var(cube.implicit_dim.name, cube.implicit_dim.coords.data(),
                        cube.implicit_dim.coords.size()));
  }
  const std::vector<float> dense = cube.to_dense();
  CLIMATE_RETURN_IF_ERROR(writer->put_var(cube.measure, dense.data(), dense.size()));
  CLIMATE_RETURN_IF_ERROR(writer->close());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.disk_writes += 1;
    stats_.disk_bytes_written += dense.size() * sizeof(float);
  }
  OBS_COUNTER_ADD("datacube.disk_bytes_written", dense.size() * sizeof(float));
  return Status::Ok();
}

Result<std::string> Server::reduce(const std::string& pid, ReduceOp op, std::size_t group_size,
                                   const std::string& description) {
  OBS_SPAN("datacube", "reduce");
  OBS_SCOPED_LATENCY("datacube.op_ns.reduce");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;
  const std::size_t alen = src.array_length();
  if (group_size == 0) group_size = alen;
  const std::size_t out_len = (alen + group_size - 1) / group_size;

  CubeData out;
  out.measure = src.measure;
  out.description = description.empty() ? "reduce" : description;
  out.explicit_dims = src.explicit_dims;
  out.implicit_dim = DimInfo{src.implicit_dim.name, out_len, {}};
  if (out_len == alen) out.implicit_dim.coords = src.implicit_dim.coords;
  out.fragments.resize(src.fragments.size());

  const std::size_t gs = group_size;
  run_fragments(src.fragments.size(), [&](std::size_t f) {
    const Fragment& in_frag = src.fragments[f];
    Fragment& out_frag = out.fragments[f];
    out_frag.row_start = in_frag.row_start;
    out_frag.row_count = in_frag.row_count;
    out_frag.server = in_frag.server;
    out_frag.values.assign(in_frag.row_count * out_len, 0.0f);
    for (std::size_t r = 0; r < in_frag.row_count; ++r) {
      const float* row = in_frag.values.data() + r * alen;
      float* dst = out_frag.values.data() + r * out_len;
      for (std::size_t g = 0; g < out_len; ++g) {
        const std::size_t begin = g * gs;
        const std::size_t end = std::min(alen, begin + gs);
        const std::size_t n = end - begin;
        switch (op) {
          case ReduceOp::kMax: {
            float m = row[begin];
            for (std::size_t i = begin + 1; i < end; ++i) m = std::max(m, row[i]);
            dst[g] = m;
            break;
          }
          case ReduceOp::kMin: {
            float m = row[begin];
            for (std::size_t i = begin + 1; i < end; ++i) m = std::min(m, row[i]);
            dst[g] = m;
            break;
          }
          case ReduceOp::kSum: {
            double s = 0;
            for (std::size_t i = begin; i < end; ++i) s += row[i];
            dst[g] = static_cast<float>(s);
            break;
          }
          case ReduceOp::kAvg: {
            double s = 0;
            for (std::size_t i = begin; i < end; ++i) s += row[i];
            dst[g] = static_cast<float>(s / static_cast<double>(n));
            break;
          }
          case ReduceOp::kStd: {
            double s = 0, s2 = 0;
            for (std::size_t i = begin; i < end; ++i) {
              s += row[i];
              s2 += static_cast<double>(row[i]) * row[i];
            }
            const double mean = s / static_cast<double>(n);
            const double var = std::max(0.0, s2 / static_cast<double>(n) - mean * mean);
            dst[g] = static_cast<float>(std::sqrt(var));
            break;
          }
          case ReduceOp::kCount: {
            dst[g] = static_cast<float>(n);
            break;
          }
        }
      }
    }
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.operators_executed;
    stats_.elements_processed += src.element_count();
  }
  return register_cube(std::move(out));
}

Result<std::string> Server::apply(const std::string& pid, const std::string& expression,
                                  const std::string& description) {
  OBS_SPAN("datacube", "apply");
  OBS_SCOPED_LATENCY("datacube.op_ns.apply");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;

  auto expr = Expression::parse(expression);
  if (!expr.ok()) return expr.status();

  const std::size_t alen = src.array_length();
  // Determine output length on a probe row.
  std::vector<float> probe(alen, 0.0f);
  const std::size_t out_len = expr->eval(probe).size();
  if (out_len == 0) return Status::InvalidArgument("expression produces empty output");

  CubeData out;
  out.measure = src.measure;
  out.description = description.empty() ? "apply(" + expression + ")" : description;
  out.explicit_dims = src.explicit_dims;
  out.implicit_dim = DimInfo{src.implicit_dim.name, out_len, {}};
  if (out_len == alen) out.implicit_dim.coords = src.implicit_dim.coords;
  out.fragments.resize(src.fragments.size());

  std::atomic<bool> length_error{false};
  run_fragments(src.fragments.size(), [&](std::size_t f) {
    const Fragment& in_frag = src.fragments[f];
    Fragment& out_frag = out.fragments[f];
    out_frag.row_start = in_frag.row_start;
    out_frag.row_count = in_frag.row_count;
    out_frag.server = in_frag.server;
    out_frag.values.assign(in_frag.row_count * out_len, 0.0f);
    std::vector<float> row(alen);
    for (std::size_t r = 0; r < in_frag.row_count; ++r) {
      std::memcpy(row.data(), in_frag.values.data() + r * alen, alen * sizeof(float));
      std::vector<float> result = expr->eval(row);
      if (result.size() == 1 && out_len > 1) result.assign(out_len, result[0]);
      if (result.size() != out_len) {
        length_error.store(true);
        return;
      }
      std::memcpy(out_frag.values.data() + r * out_len, result.data(), out_len * sizeof(float));
    }
  });
  if (length_error.load()) {
    return Status::Internal("expression produced rows of differing lengths");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.operators_executed;
    stats_.elements_processed += src.element_count();
  }
  return register_cube(std::move(out));
}

Result<std::string> Server::intercube(const std::string& pid_a, const std::string& pid_b,
                                      InterOp op, const std::string& description) {
  OBS_SPAN("datacube", "intercube");
  OBS_SCOPED_LATENCY("datacube.op_ns.intercube");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto a_result = lookup(pid_a);
  if (!a_result.ok()) return a_result.status();
  auto b_result = lookup(pid_b);
  if (!b_result.ok()) return b_result.status();
  const CubeData& a = **a_result;
  const CubeData& b = **b_result;
  if (a.row_count() != b.row_count() || a.array_length() != b.array_length()) {
    return Status::InvalidArgument("intercube: shape mismatch (" + std::to_string(a.row_count()) +
                                   "x" + std::to_string(a.array_length()) + " vs " +
                                   std::to_string(b.row_count()) + "x" +
                                   std::to_string(b.array_length()) + ")");
  }

  // b may be fragmented differently: use a dense view of it.
  const std::vector<float> b_dense = b.to_dense();
  const std::size_t alen = a.array_length();

  CubeData out;
  out.measure = a.measure;
  out.description = description.empty() ? "intercube" : description;
  out.explicit_dims = a.explicit_dims;
  out.implicit_dim = a.implicit_dim;
  out.fragments.resize(a.fragments.size());

  run_fragments(a.fragments.size(), [&](std::size_t f) {
    const Fragment& in_frag = a.fragments[f];
    Fragment& out_frag = out.fragments[f];
    out_frag.row_start = in_frag.row_start;
    out_frag.row_count = in_frag.row_count;
    out_frag.server = in_frag.server;
    out_frag.values.resize(in_frag.values.size());
    const float* bv = b_dense.data() + in_frag.row_start * alen;
    for (std::size_t i = 0; i < in_frag.values.size(); ++i) {
      const float x = in_frag.values[i];
      const float y = bv[i];
      switch (op) {
        case InterOp::kAdd: out_frag.values[i] = x + y; break;
        case InterOp::kSub: out_frag.values[i] = x - y; break;
        case InterOp::kMul: out_frag.values[i] = x * y; break;
        case InterOp::kDiv: out_frag.values[i] = y == 0.0f ? 0.0f : x / y; break;
        case InterOp::kMask: out_frag.values[i] = y > 0.0f ? x : 0.0f; break;
      }
    }
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.operators_executed;
    stats_.elements_processed += a.element_count() * 2;
  }
  return register_cube(std::move(out));
}

Result<std::string> Server::subset(const std::string& pid, const std::string& dim_name,
                                   std::size_t start, std::size_t end,
                                   const std::string& description) {
  OBS_SPAN("datacube", "subset");
  OBS_SCOPED_LATENCY("datacube.op_ns.subset");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;
  if (end < start) return Status::InvalidArgument("subset: end < start");

  const std::vector<float> dense = src.to_dense();
  const std::size_t alen = src.array_length();

  auto slice_coords = [&](const DimInfo& dim) {
    DimInfo out{dim.name, end - start + 1, {}};
    if (!dim.coords.empty()) {
      out.coords.assign(dim.coords.begin() + static_cast<long>(start),
                        dim.coords.begin() + static_cast<long>(end) + 1);
    }
    return out;
  };

  std::size_t nservers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nservers = io_servers_;
  }

  if (src.implicit_dim.name == dim_name) {
    if (end >= alen) return Status::OutOfRange("subset: index past implicit dimension");
    const std::size_t new_len = end - start + 1;
    std::vector<float> out_dense(src.row_count() * new_len);
    for (std::size_t r = 0; r < src.row_count(); ++r) {
      std::memcpy(out_dense.data() + r * new_len, dense.data() + r * alen + start,
                  new_len * sizeof(float));
    }
    CubeData out = cube_from_dense(src.measure, src.explicit_dims, slice_coords(src.implicit_dim),
                                   out_dense, nservers, nservers);
    out.description = description.empty() ? "subset(" + dim_name + ")" : description;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.operators_executed;
      stats_.elements_processed += src.element_count();
    }
    return register_cube(std::move(out));
  }

  // Explicit dimension subset: select rows whose index on dim_name lies in
  // [start, end].
  std::size_t dim_index = src.explicit_dims.size();
  for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
    if (src.explicit_dims[d].name == dim_name) dim_index = d;
  }
  if (dim_index == src.explicit_dims.size()) {
    return Status::NotFound("subset: no dimension '" + dim_name + "'");
  }
  if (end >= src.explicit_dims[dim_index].size) {
    return Status::OutOfRange("subset: index past dimension '" + dim_name + "'");
  }

  std::vector<DimInfo> out_dims = src.explicit_dims;
  out_dims[dim_index] = slice_coords(src.explicit_dims[dim_index]);

  std::size_t out_rows = 1;
  for (const DimInfo& d : out_dims) out_rows *= d.size;
  std::vector<float> out_dense(out_rows * alen);

  // Row-major walk over the output index space, mapping back to source rows.
  std::vector<std::size_t> src_strides(src.explicit_dims.size(), 1);
  for (std::size_t d = src.explicit_dims.size(); d-- > 1;) {
    src_strides[d - 1] = src_strides[d] * src.explicit_dims[d].size;
  }
  std::vector<std::size_t> idx(out_dims.size(), 0);
  for (std::size_t out_row = 0; out_row < out_rows; ++out_row) {
    std::size_t src_row = 0;
    for (std::size_t d = 0; d < out_dims.size(); ++d) {
      const std::size_t src_idx = d == dim_index ? idx[d] + start : idx[d];
      src_row += src_idx * src_strides[d];
    }
    std::memcpy(out_dense.data() + out_row * alen, dense.data() + src_row * alen,
                alen * sizeof(float));
    for (std::size_t d = out_dims.size(); d-- > 0;) {
      if (++idx[d] < out_dims[d].size) break;
      idx[d] = 0;
    }
  }
  CubeData out = cube_from_dense(src.measure, std::move(out_dims), src.implicit_dim, out_dense,
                                 nservers, nservers);
  out.description = description.empty() ? "subset(" + dim_name + ")" : description;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.operators_executed;
    stats_.elements_processed += src.element_count();
  }
  return register_cube(std::move(out));
}

Result<std::string> Server::merge(const std::string& pid_a, const std::string& pid_b,
                                  const std::string& description) {
  OBS_SPAN("datacube", "mergecubes");
  OBS_SCOPED_LATENCY("datacube.op_ns.mergecubes");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto a_result = lookup(pid_a);
  if (!a_result.ok()) return a_result.status();
  auto b_result = lookup(pid_b);
  if (!b_result.ok()) return b_result.status();
  const CubeData& a = **a_result;
  const CubeData& b = **b_result;
  if (a.explicit_dims.empty() || b.explicit_dims.empty()) {
    return Status::InvalidArgument("merge: cubes need an explicit dimension");
  }
  if (a.explicit_dims.size() != b.explicit_dims.size() || a.array_length() != b.array_length()) {
    return Status::InvalidArgument("merge: schema mismatch");
  }
  for (std::size_t d = 1; d < a.explicit_dims.size(); ++d) {
    if (a.explicit_dims[d].size != b.explicit_dims[d].size) {
      return Status::InvalidArgument("merge: inner dimension size mismatch");
    }
  }

  std::vector<DimInfo> out_dims = a.explicit_dims;
  out_dims[0].size += b.explicit_dims[0].size;
  out_dims[0].coords.clear();
  if (!a.explicit_dims[0].coords.empty() && !b.explicit_dims[0].coords.empty()) {
    out_dims[0].coords = a.explicit_dims[0].coords;
    out_dims[0].coords.insert(out_dims[0].coords.end(), b.explicit_dims[0].coords.begin(),
                              b.explicit_dims[0].coords.end());
  }
  std::vector<float> dense = a.to_dense();
  const std::vector<float> b_dense = b.to_dense();
  dense.insert(dense.end(), b_dense.begin(), b_dense.end());

  std::size_t nservers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nservers = io_servers_;
    ++stats_.operators_executed;
    stats_.elements_processed += dense.size();
  }
  CubeData out =
      cube_from_dense(a.measure, std::move(out_dims), a.implicit_dim, dense, nservers, nservers);
  out.description = description.empty() ? "merge" : description;
  return register_cube(std::move(out));
}

Result<std::string> Server::concat_implicit(const std::string& pid_a, const std::string& pid_b,
                                            const std::string& description) {
  OBS_SPAN("datacube", "concat");
  OBS_SCOPED_LATENCY("datacube.op_ns.concat");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto a_result = lookup(pid_a);
  if (!a_result.ok()) return a_result.status();
  auto b_result = lookup(pid_b);
  if (!b_result.ok()) return b_result.status();
  const CubeData& a = **a_result;
  const CubeData& b = **b_result;
  if (a.row_count() != b.row_count() || a.explicit_dims.size() != b.explicit_dims.size()) {
    return Status::InvalidArgument("concat_implicit: explicit dimension mismatch");
  }
  for (std::size_t d = 0; d < a.explicit_dims.size(); ++d) {
    if (a.explicit_dims[d].size != b.explicit_dims[d].size) {
      return Status::InvalidArgument("concat_implicit: explicit dimension size mismatch");
    }
  }
  const std::size_t alen_a = a.array_length();
  const std::size_t alen_b = b.array_length();
  const std::vector<float> dense_a = a.to_dense();
  const std::vector<float> dense_b = b.to_dense();
  const std::size_t rows = a.row_count();
  std::vector<float> out_dense(rows * (alen_a + alen_b));
  for (std::size_t r = 0; r < rows; ++r) {
    std::memcpy(out_dense.data() + r * (alen_a + alen_b), dense_a.data() + r * alen_a,
                alen_a * sizeof(float));
    std::memcpy(out_dense.data() + r * (alen_a + alen_b) + alen_a, dense_b.data() + r * alen_b,
                alen_b * sizeof(float));
  }
  DimInfo implicit = a.implicit_dim;
  implicit.size = alen_a + alen_b;
  if (!a.implicit_dim.coords.empty() && !b.implicit_dim.coords.empty()) {
    implicit.coords = a.implicit_dim.coords;
    implicit.coords.insert(implicit.coords.end(), b.implicit_dim.coords.begin(),
                           b.implicit_dim.coords.end());
  } else {
    implicit.coords.clear();
  }
  std::size_t nservers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nservers = io_servers_;
    ++stats_.operators_executed;
    stats_.elements_processed += out_dense.size();
  }
  CubeData out = cube_from_dense(a.measure, a.explicit_dims, std::move(implicit), out_dense,
                                 nservers, nservers);
  out.description = description.empty() ? "concat_implicit" : description;
  return register_cube(std::move(out));
}

Result<std::string> Server::aggregate(const std::string& pid, const std::string& dim_name,
                                      ReduceOp op, const std::string& description) {
  OBS_SPAN("datacube", "aggregate");
  OBS_SCOPED_LATENCY("datacube.op_ns.aggregate");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;

  std::size_t dim_index = src.explicit_dims.size();
  for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
    if (src.explicit_dims[d].name == dim_name) dim_index = d;
  }
  if (dim_index == src.explicit_dims.size()) {
    return Status::NotFound("aggregate: no explicit dimension '" + dim_name + "'");
  }

  const std::size_t alen = src.array_length();
  const std::vector<float> dense = src.to_dense();

  // Output dims: the collapsed one removed.
  std::vector<DimInfo> out_dims;
  for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
    if (d != dim_index) out_dims.push_back(src.explicit_dims[d]);
  }
  std::size_t out_rows = 1;
  for (const DimInfo& d : out_dims) out_rows *= d.size;
  const std::size_t collapse_n = src.explicit_dims[dim_index].size;

  // Strides of the source row index space.
  std::vector<std::size_t> strides(src.explicit_dims.size(), 1);
  for (std::size_t d = src.explicit_dims.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * src.explicit_dims[d].size;
  }

  // Accumulators per output row per array position.
  std::vector<double> sum(out_rows * alen, 0.0);
  std::vector<double> sum_sq(op == ReduceOp::kStd ? out_rows * alen : 0, 0.0);
  std::vector<float> extreme(out_rows * alen,
                             op == ReduceOp::kMax ? -std::numeric_limits<float>::infinity()
                                                  : std::numeric_limits<float>::infinity());

  std::vector<std::size_t> idx(src.explicit_dims.size(), 0);
  const std::size_t src_rows = src.row_count();
  for (std::size_t row = 0; row < src_rows; ++row) {
    // Output row index: strip dim_index from the multi-index.
    std::size_t out_row = 0;
    for (std::size_t d = 0; d < src.explicit_dims.size(); ++d) {
      if (d == dim_index) continue;
      out_row = out_row * src.explicit_dims[d].size + idx[d];
    }
    const float* src_values = dense.data() + row * alen;
    for (std::size_t k = 0; k < alen; ++k) {
      const std::size_t o = out_row * alen + k;
      const float v = src_values[k];
      sum[o] += v;
      if (op == ReduceOp::kStd) sum_sq[o] += static_cast<double>(v) * v;
      if (op == ReduceOp::kMax) extreme[o] = std::max(extreme[o], v);
      if (op == ReduceOp::kMin) extreme[o] = std::min(extreme[o], v);
    }
    for (std::size_t d = src.explicit_dims.size(); d-- > 0;) {
      if (++idx[d] < src.explicit_dims[d].size) break;
      idx[d] = 0;
    }
  }

  std::vector<float> out_dense(out_rows * alen);
  for (std::size_t o = 0; o < out_dense.size(); ++o) {
    switch (op) {
      case ReduceOp::kSum: out_dense[o] = static_cast<float>(sum[o]); break;
      case ReduceOp::kAvg: out_dense[o] = static_cast<float>(sum[o] / collapse_n); break;
      case ReduceOp::kMax:
      case ReduceOp::kMin: out_dense[o] = extreme[o]; break;
      case ReduceOp::kCount: out_dense[o] = static_cast<float>(collapse_n); break;
      case ReduceOp::kStd: {
        const double mean = sum[o] / collapse_n;
        const double var = std::max(0.0, sum_sq[o] / collapse_n - mean * mean);
        out_dense[o] = static_cast<float>(std::sqrt(var));
        break;
      }
    }
  }
  std::size_t nservers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nservers = io_servers_;
    ++stats_.operators_executed;
    stats_.elements_processed += dense.size();
  }
  if (out_dims.empty()) out_dims.push_back({"scalar", 1, {}});
  CubeData out = cube_from_dense(src.measure, std::move(out_dims), src.implicit_dim, out_dense,
                                 nservers, nservers);
  out.description = description.empty() ? "aggregate(" + dim_name + ")" : description;
  return register_cube(std::move(out));
}

Status Server::delete_cube(const std::string& pid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = catalog_.find(pid);
  if (it == catalog_.end()) return Status::NotFound("no datacube '" + pid + "'");
  catalog_.erase(it);
  metadata_.erase(pid);
  creation_order_.erase(std::remove(creation_order_.begin(), creation_order_.end(), pid),
                        creation_order_.end());
  ++stats_.cubes_deleted;
  return Status::Ok();
}

Result<CubeSchema> Server::cubeschema(const std::string& pid) const {
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& cube = **cube_result;
  CubeSchema schema;
  schema.pid = pid;
  schema.measure = cube.measure;
  schema.description = cube.description;
  schema.explicit_dims = cube.explicit_dims;
  schema.implicit_dim = cube.implicit_dim;
  schema.fragment_count = cube.fragments.size();
  schema.element_count = cube.element_count();
  schema.byte_size = cube.byte_size();
  return schema;
}

Result<std::shared_ptr<const CubeData>> Server::get(const std::string& pid) const {
  return lookup(pid);
}

Result<std::vector<float>> Server::fetch_dense(const std::string& pid) const {
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  return (*cube_result)->to_dense();
}

std::vector<std::string> Server::list_cubes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return creation_order_;
}

Status Server::set_metadata(const std::string& pid, const std::string& key,
                            const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (catalog_.find(pid) == catalog_.end()) return Status::NotFound("no datacube '" + pid + "'");
  metadata_[pid][key] = value;
  return Status::Ok();
}

Result<std::map<std::string, std::string>> Server::metadata(const std::string& pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (catalog_.find(pid) == catalog_.end()) return Status::NotFound("no datacube '" + pid + "'");
  auto it = metadata_.find(pid);
  if (it == metadata_.end()) return std::map<std::string, std::string>{};
  return it->second;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Server::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [pid, cube] : catalog_) bytes += cube->byte_size();
  return bytes;
}

}  // namespace climate::datacube

namespace climate::datacube {

common::Result<common::Json> Server::execute(const common::Json& request) {
  using common::Json;
  const std::string op = request.get_string("operator");
  if (op.empty()) return Status::InvalidArgument("request has no 'operator'");

  auto pid_response = [](Result<std::string> pid) -> Result<Json> {
    if (!pid.ok()) return pid.status();
    Json response = Json::object();
    response["status"] = "OK";
    response["cube"] = *pid;
    return response;
  };
  const std::string cube = request.get_string("cube");
  const std::string description = request.get_string("description");

  if (op == "importnc") {
    ImportOptions options;
    options.nfragments = static_cast<std::size_t>(request.get_int("nfragments", 0));
    options.implicit_dim = request.get_string("implicit_dim");
    return pid_response(importnc(request.get_string("path"), request.get_string("measure"),
                                 options));
  }
  if (op == "exportnc") {
    const Status st = exportnc(cube, request.get_string("path"));
    if (!st.ok()) return st;
    Json response = Json::object();
    response["status"] = "OK";
    return response;
  }
  if (op == "reduce") {
    auto parsed = parse_reduce_op(request.get_string("operation", "max"));
    if (!parsed.ok()) return parsed.status();
    return pid_response(reduce(cube, *parsed,
                               static_cast<std::size_t>(request.get_int("group", 0)),
                               description));
  }
  if (op == "apply") {
    return pid_response(apply(cube, request.get_string("query"), description));
  }
  if (op == "intercube") {
    auto parsed = parse_inter_op(request.get_string("operation", "sub"));
    if (!parsed.ok()) return parsed.status();
    return pid_response(intercube(cube, request.get_string("cube2"), *parsed, description));
  }
  if (op == "subset") {
    return pid_response(subset(cube, request.get_string("dim"),
                               static_cast<std::size_t>(request.get_int("start", 0)),
                               static_cast<std::size_t>(request.get_int("end", 0)), description));
  }
  if (op == "mergecubes") {
    return pid_response(merge(cube, request.get_string("cube2"), description));
  }
  if (op == "concat") {
    return pid_response(concat_implicit(cube, request.get_string("cube2"), description));
  }
  if (op == "aggregate") {
    auto parsed = parse_reduce_op(request.get_string("operation", "avg"));
    if (!parsed.ok()) return parsed.status();
    return pid_response(aggregate(cube, request.get_string("dim"), *parsed, description));
  }
  if (op == "delete") {
    const Status st = delete_cube(cube);
    if (!st.ok()) return st;
    Json response = Json::object();
    response["status"] = "OK";
    return response;
  }
  if (op == "cubeschema") {
    auto schema = cubeschema(cube);
    if (!schema.ok()) return schema.status();
    Json response = Json::object();
    response["status"] = "OK";
    response["measure"] = schema->measure;
    response["description"] = schema->description;
    response["elements"] = schema->element_count;
    response["fragments"] = schema->fragment_count;
    Json dims = Json::array();
    for (const DimInfo& dim : schema->explicit_dims) {
      Json d = Json::object();
      d["name"] = dim.name;
      d["size"] = dim.size;
      dims.push_back(std::move(d));
    }
    response["explicit_dims"] = std::move(dims);
    Json implicit = Json::object();
    implicit["name"] = schema->implicit_dim.name;
    implicit["size"] = schema->implicit_dim.size;
    response["implicit_dim"] = std::move(implicit);
    return response;
  }
  if (op == "list") {
    Json response = Json::object();
    response["status"] = "OK";
    Json cubes = Json::array();
    for (const std::string& pid : list_cubes()) cubes.push_back(pid);
    response["cubes"] = std::move(cubes);
    return response;
  }
  if (op == "metadata") {
    const std::string key = request.get_string("key");
    if (!key.empty() && request.contains("value")) {
      const Status st = set_metadata(cube, key, request.get_string("value"));
      if (!st.ok()) return st;
      Json response = Json::object();
      response["status"] = "OK";
      return response;
    }
    auto meta = metadata(cube);
    if (!meta.ok()) return meta.status();
    Json response = Json::object();
    response["status"] = "OK";
    Json entries = Json::object();
    for (const auto& [k, v] : *meta) entries[k] = v;
    response["metadata"] = std::move(entries);
    return response;
  }
  return Status::Unimplemented("unknown operator '" + op + "'");
}

}  // namespace climate::datacube
