#include "datacube/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/log.hpp"
#include "ncio/ncfile.hpp"
#include "obs/obs.hpp"

namespace climate::datacube {
namespace {

constexpr const char* kLogTag = "datacube";

thread_local std::string t_session = "default";

}  // namespace

Server::SessionScope::SessionScope(std::string session) : previous_(t_session) {
  t_session = std::move(session);
}

Server::SessionScope::~SessionScope() { t_session = previous_; }

const std::string& Server::current_session() { return t_session; }

Server::Server(std::size_t io_servers) { set_io_servers(io_servers); }

void Server::set_io_servers(std::size_t count) {
  count = std::max<std::size_t>(1, count);
  std::shared_ptr<common::ThreadPool> retired;  // destroyed outside the lock
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (count == io_servers_) return;
  retired = std::move(pool_);
  pool_ = std::make_shared<common::ThreadPool>(count);
  io_servers_ = count;
}

std::size_t Server::io_servers() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return io_servers_;
}

void Server::run_fragments(std::size_t count, const std::function<void(std::size_t)>& fn) {
  // Copy the shared_ptr so a concurrent set_io_servers swap cannot destroy
  // the pool while this run uses it; in-flight runs simply finish on the
  // retired pool.
  std::shared_ptr<common::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool = pool_;
  }
  const std::uint64_t latency_ns = fragment_latency_ns_.load(std::memory_order_relaxed);
  if (latency_ns == 0) {
    pool->parallel_for(count, fn);
    return;
  }
  pool->parallel_for(count, [&](std::size_t i) {
    // Simulated storage round-trip per fragment access (see
    // set_fragment_latency_ns): models a distributed I/O-server deployment.
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency_ns));
    fn(i);
  });
}

engine::ParallelRunner Server::fragment_runner() {
  return [this](std::size_t count, const std::function<void(std::size_t)>& fn) {
    run_fragments(count, fn);
  };
}

Result<AdmissionController::Ticket> Server::admit_op(const char* op) {
  std::shared_ptr<common::fault::Injector> faults;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    faults = faults_;
  }
  if (faults) {
    const std::int64_t key = op_ordinal_.fetch_add(1, std::memory_order_relaxed);
    if (auto delay = faults->fire(common::fault::Kind::kFragmentDelay, op, key)) {
      OBS_COUNTER_ADD("fault.injected.datacube.fragment_delay", 1);
      obs::Span span("fault", "inject:fragment_delay");
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(static_cast<std::int64_t>(delay->delay_ms * 1e6)));
    }
    if (faults->fire(common::fault::Kind::kFragmentError, op, key)) {
      OBS_COUNTER_ADD("fault.injected.datacube.fragment_error", 1);
      obs::Span span("fault", "inject:fragment_error");
      return Status::Unavailable(std::string("injected fragment-operation fault in ") + op);
    }
  }
  return admission_.admit(current_session());
}

std::string Server::register_cube(CubeData cube) {
  std::string pid = catalog_.insert(std::move(cube));
  stats_.cubes_created.increment();
  return pid;
}

Result<std::shared_ptr<const CubeData>> Server::lookup(const std::string& pid) const {
  return catalog_.find(pid);
}

Result<std::string> Server::importnc(const std::string& path, const std::string& variable,
                                     const ImportOptions& options) {
  OBS_SPAN("datacube", "importnc");
  OBS_SCOPED_LATENCY("datacube.op_ns.importnc");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("importnc");
  if (!ticket.ok()) return ticket.status();
  auto reader = ncio::FileReader::open(path);
  if (!reader.ok()) return reader.status();

  auto info = reader->var_info(variable);
  if (!info.ok()) return info.status();
  if (info->dim_ids.empty()) return Status::InvalidArgument("variable '" + variable + "' is a scalar");

  auto values = reader->read_floats(variable);
  if (!values.ok()) return values.status();

  CubeData cube;
  cube.measure = variable;
  cube.description = "importnc(" + path + ")";

  // Identify the implicit dimension: the named one, or the last.
  std::size_t implicit_index = info->dim_ids.size() - 1;
  if (!options.implicit_dim.empty()) {
    bool found = false;
    for (std::size_t d = 0; d < info->dim_ids.size(); ++d) {
      if (reader->dims()[info->dim_ids[d]].name == options.implicit_dim) {
        implicit_index = d;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("implicit dimension '" + options.implicit_dim + "' not in variable");
    }
    if (implicit_index != info->dim_ids.size() - 1) {
      return Status::Unimplemented("implicit dimension must be the variable's last dimension");
    }
  }

  auto dim_coords = [&](const std::string& name) -> std::vector<double> {
    auto coord = reader->var_info(name);
    if (!coord.ok() || coord->dim_ids.size() != 1) return {};
    auto v = reader->read_doubles(name);
    if (!v.ok()) return {};
    return std::move(*v);
  };

  for (std::size_t d = 0; d < info->dim_ids.size(); ++d) {
    const ncio::Dim& dim = reader->dims()[info->dim_ids[d]];
    DimInfo di{dim.name, dim.length, dim_coords(dim.name)};
    if (d == implicit_index) {
      cube.implicit_dim = std::move(di);
    } else {
      cube.explicit_dims.push_back(std::move(di));
    }
  }

  std::size_t nfragments = options.nfragments;
  const std::size_t nservers = io_servers();
  stats_.disk_reads.increment();
  stats_.disk_bytes_read.add(values->size() * sizeof(float));
  OBS_COUNTER_ADD("datacube.disk_bytes_read", values->size() * sizeof(float));
  if (nfragments == 0) nfragments = nservers;

  const std::size_t alen = cube.array_length();
  cube.fragments = make_fragments(cube.row_count(), alen, nfragments, nservers);
  run_fragments(cube.fragments.size(), [&](std::size_t f) {
    Fragment& frag = cube.fragments[f];
    std::memcpy(frag.values.data(), values->data() + frag.row_start * alen,
                frag.values.size() * sizeof(float));
  });
  LOG_DEBUG(kLogTag) << "importnc " << path << ":" << variable << " -> " << cube.element_count()
                     << " elements in " << cube.fragments.size() << " fragments";
  return register_cube(std::move(cube));
}

Result<std::string> Server::create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                                        DimInfo implicit_dim, const std::vector<float>& dense,
                                        std::string description) {
  std::size_t rows = 1;
  for (const DimInfo& d : explicit_dims) rows *= d.size;
  if (dense.size() != rows * implicit_dim.size) {
    return Status::InvalidArgument("create_cube: buffer has " + std::to_string(dense.size()) +
                                   " elements, expected " + std::to_string(rows * implicit_dim.size));
  }
  const std::size_t nservers = io_servers();
  CubeData cube = cube_from_dense(std::move(measure), std::move(explicit_dims),
                                  std::move(implicit_dim), dense, nservers, nservers);
  cube.description = std::move(description);
  return register_cube(std::move(cube));
}

Status Server::exportnc(const std::string& pid, const std::string& path) {
  OBS_SPAN("datacube", "exportnc");
  OBS_SCOPED_LATENCY("datacube.op_ns.exportnc");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("exportnc");
  if (!ticket.ok()) return ticket.status();
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& cube = **cube_result;

  auto writer = ncio::FileWriter::create(path);
  if (!writer.ok()) return writer.status();

  std::vector<std::string> dim_names;
  for (const DimInfo& dim : cube.explicit_dims) {
    auto id = writer->def_dim(dim.name, dim.size);
    if (!id.ok()) return id.status();
    dim_names.push_back(dim.name);
  }
  const bool has_implicit = cube.array_length() > 1;
  if (has_implicit) {
    auto id = writer->def_dim(cube.implicit_dim.name, cube.implicit_dim.size);
    if (!id.ok()) return id.status();
    dim_names.push_back(cube.implicit_dim.name);
  }
  // Coordinate variables.
  auto def_coord = [&](const DimInfo& dim) -> Status {
    if (dim.coords.empty()) return Status::Ok();
    auto id = writer->def_var(dim.name, ncio::DType::kFloat64, {dim.name});
    return id.ok() ? Status::Ok() : id.status();
  };
  for (const DimInfo& dim : cube.explicit_dims) CLIMATE_RETURN_IF_ERROR(def_coord(dim));
  if (has_implicit) CLIMATE_RETURN_IF_ERROR(def_coord(cube.implicit_dim));

  auto var_id = writer->def_var(cube.measure, ncio::DType::kFloat32, dim_names);
  if (!var_id.ok()) return var_id.status();
  CLIMATE_RETURN_IF_ERROR(writer->put_attr("", "source", std::string("climate_datacube exportnc")));
  CLIMATE_RETURN_IF_ERROR(writer->put_attr(cube.measure, "description", cube.description));
  CLIMATE_RETURN_IF_ERROR(writer->end_def());

  for (const DimInfo& dim : cube.explicit_dims) {
    if (!dim.coords.empty()) {
      CLIMATE_RETURN_IF_ERROR(writer->put_var(dim.name, dim.coords.data(), dim.coords.size()));
    }
  }
  if (has_implicit && !cube.implicit_dim.coords.empty()) {
    CLIMATE_RETURN_IF_ERROR(
        writer->put_var(cube.implicit_dim.name, cube.implicit_dim.coords.data(),
                        cube.implicit_dim.coords.size()));
  }
  const std::vector<float> dense = cube.to_dense();
  CLIMATE_RETURN_IF_ERROR(writer->put_var(cube.measure, dense.data(), dense.size()));
  CLIMATE_RETURN_IF_ERROR(writer->close());
  stats_.disk_writes.increment();
  stats_.disk_bytes_written.add(dense.size() * sizeof(float));
  OBS_COUNTER_ADD("datacube.disk_bytes_written", dense.size() * sizeof(float));
  return Status::Ok();
}

Result<std::string> Server::reduce(const std::string& pid, ReduceOp op, std::size_t group_size,
                                   const std::string& description) {
  OBS_SPAN("datacube", "reduce");
  OBS_SCOPED_LATENCY("datacube.op_ns.reduce");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("reduce");
  if (!ticket.ok()) return ticket.status();
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;
  auto out = engine::reduce(src, op, group_size, description, fragment_runner());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(src.element_count());
  return register_cube(std::move(*out));
}

Result<std::string> Server::apply(const std::string& pid, const std::string& expression,
                                  const std::string& description) {
  OBS_SPAN("datacube", "apply");
  OBS_SCOPED_LATENCY("datacube.op_ns.apply");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("apply");
  if (!ticket.ok()) return ticket.status();
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;
  auto out = engine::apply(src, expression, description, fragment_runner());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(src.element_count());
  return register_cube(std::move(*out));
}

Result<std::string> Server::intercube(const std::string& pid_a, const std::string& pid_b,
                                      InterOp op, const std::string& description) {
  OBS_SPAN("datacube", "intercube");
  OBS_SCOPED_LATENCY("datacube.op_ns.intercube");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("intercube");
  if (!ticket.ok()) return ticket.status();
  auto a_result = lookup(pid_a);
  if (!a_result.ok()) return a_result.status();
  auto b_result = lookup(pid_b);
  if (!b_result.ok()) return b_result.status();
  const CubeData& a = **a_result;
  const CubeData& b = **b_result;
  auto out = engine::intercube(a, b, op, description, fragment_runner());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(a.element_count() * 2);
  return register_cube(std::move(*out));
}

Result<std::string> Server::subset(const std::string& pid, const std::string& dim_name,
                                   std::size_t start, std::size_t end,
                                   const std::string& description) {
  OBS_SPAN("datacube", "subset");
  OBS_SCOPED_LATENCY("datacube.op_ns.subset");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("subset");
  if (!ticket.ok()) return ticket.status();
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;
  auto out = engine::subset(src, dim_name, start, end, description, io_servers());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(src.element_count());
  return register_cube(std::move(*out));
}

Result<std::string> Server::merge(const std::string& pid_a, const std::string& pid_b,
                                  const std::string& description) {
  OBS_SPAN("datacube", "mergecubes");
  OBS_SCOPED_LATENCY("datacube.op_ns.mergecubes");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("mergecubes");
  if (!ticket.ok()) return ticket.status();
  auto a_result = lookup(pid_a);
  if (!a_result.ok()) return a_result.status();
  auto b_result = lookup(pid_b);
  if (!b_result.ok()) return b_result.status();
  const CubeData& a = **a_result;
  const CubeData& b = **b_result;
  auto out = engine::merge(a, b, description, io_servers());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(a.element_count() + b.element_count());
  return register_cube(std::move(*out));
}

Result<std::string> Server::concat_implicit(const std::string& pid_a, const std::string& pid_b,
                                            const std::string& description) {
  OBS_SPAN("datacube", "concat");
  OBS_SCOPED_LATENCY("datacube.op_ns.concat");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("concat");
  if (!ticket.ok()) return ticket.status();
  auto a_result = lookup(pid_a);
  if (!a_result.ok()) return a_result.status();
  auto b_result = lookup(pid_b);
  if (!b_result.ok()) return b_result.status();
  const CubeData& a = **a_result;
  const CubeData& b = **b_result;
  auto out = engine::concat_implicit(a, b, description, io_servers());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(a.element_count() + b.element_count());
  return register_cube(std::move(*out));
}

Result<std::string> Server::aggregate(const std::string& pid, const std::string& dim_name,
                                      ReduceOp op, const std::string& description) {
  OBS_SPAN("datacube", "aggregate");
  OBS_SCOPED_LATENCY("datacube.op_ns.aggregate");
  OBS_COUNTER_ADD("datacube.operators", 1);
  auto ticket = admit_op("aggregate");
  if (!ticket.ok()) return ticket.status();
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& src = **cube_result;
  auto out = engine::aggregate(src, dim_name, op, description, io_servers());
  if (!out.ok()) return out.status();
  stats_.operators_executed.increment();
  stats_.elements_processed.add(src.element_count());
  return register_cube(std::move(*out));
}

Status Server::delete_cube(const std::string& pid) {
  CLIMATE_RETURN_IF_ERROR(catalog_.erase(pid));
  stats_.cubes_deleted.increment();
  return Status::Ok();
}

Result<CubeSchema> Server::cubeschema(const std::string& pid) const {
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  const CubeData& cube = **cube_result;
  CubeSchema schema;
  schema.pid = pid;
  schema.measure = cube.measure;
  schema.description = cube.description;
  schema.explicit_dims = cube.explicit_dims;
  schema.implicit_dim = cube.implicit_dim;
  schema.fragment_count = cube.fragments.size();
  schema.element_count = cube.element_count();
  schema.byte_size = cube.byte_size();
  return schema;
}

Result<std::shared_ptr<const CubeData>> Server::get(const std::string& pid) const {
  return lookup(pid);
}

Result<std::vector<float>> Server::fetch_dense(const std::string& pid) const {
  auto cube_result = lookup(pid);
  if (!cube_result.ok()) return cube_result.status();
  return (*cube_result)->to_dense();
}

std::vector<std::string> Server::list_cubes() const { return catalog_.list(); }

Status Server::set_metadata(const std::string& pid, const std::string& key,
                            const std::string& value) {
  return catalog_.set_metadata(pid, key, value);
}

Result<std::map<std::string, std::string>> Server::metadata(const std::string& pid) const {
  return catalog_.metadata(pid);
}

ServerStats Server::stats() const {
  ServerStats snap;
  snap.operators_executed = stats_.operators_executed.total();
  snap.disk_reads = stats_.disk_reads.total();
  snap.disk_bytes_read = stats_.disk_bytes_read.total();
  snap.disk_writes = stats_.disk_writes.total();
  snap.disk_bytes_written = stats_.disk_bytes_written.total();
  snap.elements_processed = stats_.elements_processed.total();
  snap.cubes_created = stats_.cubes_created.total();
  snap.cubes_deleted = stats_.cubes_deleted.total();
  return snap;
}

std::size_t Server::resident_bytes() const { return catalog_.resident_bytes(); }

}  // namespace climate::datacube

namespace climate::datacube {

common::Result<common::Json> Server::execute(const common::Json& request) {
  using common::Json;
  const std::string op = request.get_string("operator");
  if (op.empty()) return Status::InvalidArgument("request has no 'operator'");

  auto pid_response = [](Result<std::string> pid) -> Result<Json> {
    if (!pid.ok()) return pid.status();
    Json response = Json::object();
    response["status"] = "OK";
    response["cube"] = *pid;
    return response;
  };
  const std::string cube = request.get_string("cube");
  const std::string description = request.get_string("description");

  if (op == "importnc") {
    ImportOptions options;
    options.nfragments = static_cast<std::size_t>(request.get_int("nfragments", 0));
    options.implicit_dim = request.get_string("implicit_dim");
    return pid_response(importnc(request.get_string("path"), request.get_string("measure"),
                                 options));
  }
  if (op == "exportnc") {
    const Status st = exportnc(cube, request.get_string("path"));
    if (!st.ok()) return st;
    Json response = Json::object();
    response["status"] = "OK";
    return response;
  }
  if (op == "reduce") {
    auto parsed = parse_reduce_op(request.get_string("operation", "max"));
    if (!parsed.ok()) return parsed.status();
    return pid_response(reduce(cube, *parsed,
                               static_cast<std::size_t>(request.get_int("group", 0)),
                               description));
  }
  if (op == "apply") {
    return pid_response(apply(cube, request.get_string("query"), description));
  }
  if (op == "intercube") {
    auto parsed = parse_inter_op(request.get_string("operation", "sub"));
    if (!parsed.ok()) return parsed.status();
    return pid_response(intercube(cube, request.get_string("cube2"), *parsed, description));
  }
  if (op == "subset") {
    return pid_response(subset(cube, request.get_string("dim"),
                               static_cast<std::size_t>(request.get_int("start", 0)),
                               static_cast<std::size_t>(request.get_int("end", 0)), description));
  }
  if (op == "mergecubes") {
    return pid_response(merge(cube, request.get_string("cube2"), description));
  }
  if (op == "concat") {
    return pid_response(concat_implicit(cube, request.get_string("cube2"), description));
  }
  if (op == "aggregate") {
    auto parsed = parse_reduce_op(request.get_string("operation", "avg"));
    if (!parsed.ok()) return parsed.status();
    return pid_response(aggregate(cube, request.get_string("dim"), *parsed, description));
  }
  if (op == "delete") {
    const Status st = delete_cube(cube);
    if (!st.ok()) return st;
    Json response = Json::object();
    response["status"] = "OK";
    return response;
  }
  if (op == "cubeschema") {
    auto schema = cubeschema(cube);
    if (!schema.ok()) return schema.status();
    Json response = Json::object();
    response["status"] = "OK";
    response["measure"] = schema->measure;
    response["description"] = schema->description;
    response["elements"] = schema->element_count;
    response["fragments"] = schema->fragment_count;
    Json dims = Json::array();
    for (const DimInfo& dim : schema->explicit_dims) {
      Json d = Json::object();
      d["name"] = dim.name;
      d["size"] = dim.size;
      dims.push_back(std::move(d));
    }
    response["explicit_dims"] = std::move(dims);
    Json implicit = Json::object();
    implicit["name"] = schema->implicit_dim.name;
    implicit["size"] = schema->implicit_dim.size;
    response["implicit_dim"] = std::move(implicit);
    return response;
  }
  if (op == "list") {
    Json response = Json::object();
    response["status"] = "OK";
    Json cubes = Json::array();
    for (const std::string& pid : list_cubes()) cubes.push_back(pid);
    response["cubes"] = std::move(cubes);
    return response;
  }
  if (op == "metadata") {
    const std::string key = request.get_string("key");
    if (!key.empty() && request.contains("value")) {
      const Status st = set_metadata(cube, key, request.get_string("value"));
      if (!st.ok()) return st;
      Json response = Json::object();
      response["status"] = "OK";
      return response;
    }
    auto meta = metadata(cube);
    if (!meta.ok()) return meta.status();
    Json response = Json::object();
    response["status"] = "OK";
    Json entries = Json::object();
    for (const auto& [k, v] : *meta) entries[k] = v;
    response["metadata"] = std::move(entries);
    return response;
  }
  return Status::Unimplemented("unknown operator '" + op + "'");
}

}  // namespace climate::datacube
