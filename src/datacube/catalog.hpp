// Sharded cube catalog: the PID -> cube map of the datacube front-end, split
// into independently locked shards so concurrent sessions registering,
// looking up and deleting cubes contend only when they hash to the same
// shard. PID -> shard routing is a lock-free FNV-1a hash over the PID
// string; PIDs themselves come from one atomic sequence, which doubles as
// the creation-order key (list() merges the shards and sorts by it).
//
// Per-cube metadata lives next to the cube entry under the same shard lock,
// so a metadata read never crosses shards.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/striped.hpp"
#include "datacube/cube.hpp"

namespace climate::datacube {

class CubeCatalog {
 public:
  static constexpr std::size_t kShards = 16;  // power of two: shard pick is a mask

  CubeCatalog() = default;
  CubeCatalog(const CubeCatalog&) = delete;
  CubeCatalog& operator=(const CubeCatalog&) = delete;

  /// Registers a cube under a fresh PID and returns it.
  std::string insert(CubeData cube);

  /// Shared, immutable cube contents (survive catalog deletion).
  Result<std::shared_ptr<const CubeData>> find(const std::string& pid) const;

  /// Removes a cube (and its metadata) from the catalog.
  Status erase(const std::string& pid);

  /// All catalogued PIDs in creation order.
  std::vector<std::string> list() const;

  Status set_metadata(const std::string& pid, const std::string& key, const std::string& value);
  Result<std::map<std::string, std::string>> metadata(const std::string& pid) const;

  /// Number of catalogued cubes.
  std::size_t size() const;

  /// Total bytes of all catalogued cubes.
  std::size_t resident_bytes() const;

  /// Times a shard lock was found held by another thread (across all
  /// shards); the per-shard breakdown is in contention_by_shard().
  std::uint64_t lock_contention() const { return contention_.total(); }

  /// Per-shard contended-acquisition counts, index = shard.
  std::array<std::uint64_t, kShards> contention_by_shard() const;

 private:
  struct Entry {
    std::shared_ptr<const CubeData> cube;
    std::uint64_t seq = 0;  ///< Creation-order key (the PID's sequence number).
    std::map<std::string, std::string> metadata;
  };

  struct alignas(common::kCacheLineSize) Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    mutable std::atomic<std::uint64_t> contended{0};
  };

  /// Lock-free PID -> shard routing (FNV-1a over the PID bytes).
  static std::size_t shard_index(const std::string& pid);

  /// Locks a shard, counting acquisitions that had to wait.
  std::unique_lock<std::mutex> lock_shard(const Shard& shard) const;

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable common::StripedCounter contention_;
};

}  // namespace climate::datacube
