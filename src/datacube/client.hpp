// Client-side bindings for the datacube framework — the PyOphidia
// equivalent. Mirrors the session/Cube object model the paper's Listing 1
// uses:
//
//   Client client(server, "my-session");
//   Cube tmax = *client.importnc("day1.nc", "tmax");
//   Cube max_duration = *duration.reduce("max", 0, "Max Duration cube");
//   Cube mask = *duration.apply("oph_predicate(measure,'>0',1,0)");
//   Cube count = *mask.reduce("sum", 0, "Number of durations cube");
//   count.exportnc2(output_path, output_name);
//
// The typed surface is Result-based end to end (no throwing paths):
//  - CubeHandle is a pure value — the PID plus the schema snapshot taken
//    when the handle was produced — safe to copy across threads and task
//    boundaries without touching the server;
//  - Cube binds a handle to a server connection and dispatches operators;
//  - every Client carries a session name, so its operators queue fairly in
//    the server's admission layer (see datacube/admission.hpp).
//
// All processing happens server-side and results stay in server memory
// until exported.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "datacube/server.hpp"

namespace climate::datacube {

class Client;

/// Counter snapshot of a client's retry layer.
struct ClientRetryStats {
  std::uint64_t calls = 0;               ///< Operator calls through the retry layer.
  std::uint64_t retries = 0;             ///< Extra attempts beyond the first.
  std::uint64_t exhausted = 0;           ///< Calls that gave up still-transient.
  std::uint64_t breaker_rejections = 0;  ///< Calls failed fast on an open circuit.
};

/// Retry discipline shared by a Client and every Cube it produces: backoff
/// options, a circuit breaker, and counters. Thread-safe.
struct ClientRetryState {
  explicit ClientRetryState(common::RetryOptions options = {},
                            common::CircuitBreaker::Options breaker_options = {})
      : options(options), breaker(breaker_options) {}

  common::RetryOptions options;
  common::CircuitBreaker breaker;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> exhausted{0};
  std::atomic<std::uint64_t> breaker_rejections{0};

  ClientRetryStats stats() const {
    ClientRetryStats snap;
    snap.calls = calls.load(std::memory_order_relaxed);
    snap.retries = retries.load(std::memory_order_relaxed);
    snap.exhausted = exhausted.load(std::memory_order_relaxed);
    snap.breaker_rejections = breaker_rejections.load(std::memory_order_relaxed);
    return snap;
  }
};

/// Immutable value handle to one server-side datacube: the PID plus the
/// schema snapshot captured when the handle was produced. Pure data (no
/// server pointer) — the snapshot answers shape questions without a catalog
/// round-trip, and the handle can cross task/thread boundaries freely.
struct CubeHandle {
  std::string pid;
  CubeSchema schema;

  bool valid() const { return !pid.empty(); }
};

/// A CubeHandle bound to a server connection: dispatches operators under
/// the owning client's session.
class Cube {
 public:
  Cube() = default;
  /// Deprecated: binds to a raw PID with no validation and no schema
  /// snapshot; prefer Client::open, which checks the PID and captures the
  /// schema. Kept as a forwarding shim for legacy string-PID call sites.
  Cube(Server* server, std::string pid) : server_(server) { handle_.pid = std::move(pid); }
  Cube(Server* server, CubeHandle handle, std::string session,
       std::shared_ptr<ClientRetryState> retry = nullptr)
      : server_(server),
        handle_(std::move(handle)),
        session_(std::move(session)),
        retry_(std::move(retry)) {}

  const std::string& pid() const { return handle_.pid; }
  /// The value handle (PID + schema snapshot at creation time).
  const CubeHandle& handle() const { return handle_; }
  /// Schema captured when this cube was produced. Empty for cubes built via
  /// the deprecated raw-PID constructor; cubes are immutable, so for a
  /// validated handle the snapshot never goes stale.
  const CubeSchema& schema_snapshot() const { return handle_.schema; }
  const std::string& session() const { return session_; }
  bool valid() const { return server_ != nullptr && handle_.valid(); }

  /// Reduce over the implicit dimension ("max","min","sum","avg","std",
  /// "count"); group 0 collapses the whole array.
  Result<Cube> reduce(const std::string& op, std::size_t group = 0,
                      const std::string& description = "") const;

  /// Apply an array expression (see datacube/expression.hpp).
  Result<Cube> apply(const std::string& expression, const std::string& description = "") const;

  /// Element-wise binary operation against another cube.
  Result<Cube> intercube(const Cube& other, const std::string& op,
                         const std::string& description = "") const;

  /// Inclusive index-range subset of a dimension.
  Result<Cube> subset(const std::string& dim, std::size_t start, std::size_t end,
                      const std::string& description = "") const;

  /// Concatenate along the first explicit dimension.
  Result<Cube> merge(const Cube& other, const std::string& description = "") const;

  /// Concatenate along the implicit (array) dimension.
  Result<Cube> concat(const Cube& other, const std::string& description = "") const;

  /// Collapse an explicit dimension with a reduction ("max","min","sum",
  /// "avg","std","count") — spatial aggregation.
  Result<Cube> aggregate(const std::string& dim, const std::string& op,
                         const std::string& description = "") const;

  /// Export to a CDF-lite file, PyOphidia exportnc2-style.
  Status exportnc2(const std::string& output_path, const std::string& output_name) const;

  /// Schema snapshot (fresh from the catalog; see also schema_snapshot()).
  Result<CubeSchema> schema() const;

  /// Dense row-major values (synchronizes data to the client).
  Result<std::vector<float>> values() const;

  /// Delete the server-side cube.
  Status del() const;

 private:
  friend class Client;

  Server* server_ = nullptr;
  CubeHandle handle_;
  std::string session_ = "default";
  /// Retry/breaker state inherited from the producing Client (null for the
  /// deprecated raw-PID constructor: ops then run bare, single-attempt).
  std::shared_ptr<ClientRetryState> retry_;
};

/// A connection to the framework front-end, bound to a named session.
/// Operators issued through this client (and through the Cubes it produces)
/// are admitted under that session, so concurrent clients share the server
/// fairly.
class Client {
 public:
  /// Binds to a running server (in-process deployment of the framework).
  /// Transient failures (UNAVAILABLE admission rejections, injected
  /// fragment faults) are retried with backoff by default; see set_retry.
  explicit Client(Server& server, std::string session = "default")
      : server_(&server),
        session_(std::move(session)),
        retry_(std::make_shared<ClientRetryState>()) {}

  /// Replaces the retry discipline (and resets the circuit breaker) for
  /// this client and all Cubes produced afterwards. max_attempts = 1
  /// disables retrying.
  void set_retry(common::RetryOptions options,
                 common::CircuitBreaker::Options breaker_options = {}) {
    retry_ = std::make_shared<ClientRetryState>(options, breaker_options);
  }

  /// Retry-layer counters (calls, retries, exhaustions, breaker trips).
  ClientRetryStats retry_stats() const { return retry_->stats(); }

  /// Current circuit-breaker state (open = failing fast).
  common::CircuitBreaker::State breaker_state() const { return retry_->breaker.state(); }

  /// Imports a variable from a CDF-lite file.
  Result<Cube> importnc(const std::string& path, const std::string& variable,
                        const ImportOptions& options = {});

  /// Creates a cube from client-side data.
  Result<Cube> create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                           DimInfo implicit_dim, const std::vector<float>& dense,
                           std::string description = "");

  /// Opens an existing cube by PID: validates it against the catalog and
  /// captures its schema snapshot.
  Result<Cube> open(const std::string& pid) const;

  /// Rebinds a handle that crossed a task/thread boundary (no server
  /// round-trip; the handle's snapshot is kept as-is).
  Cube bind(CubeHandle handle) const {
    return Cube(server_, std::move(handle), session_, retry_);
  }

  /// Typed catalog listing: a handle (PID + schema) per cube, creation
  /// order.
  Result<std::vector<CubeHandle>> cubes() const;

  /// Deprecated: wraps a raw PID with no validation or schema snapshot;
  /// prefer open(). Forwarding shim for legacy call sites.
  Cube attach(const std::string& pid) { return Cube(server_, pid); }

  /// Deprecated: raw PID strings; prefer cubes(). Forwarding shim.
  std::vector<std::string> list() const { return server_->list_cubes(); }

  const std::string& session() const { return session_; }
  Server& server() { return *server_; }

 private:
  Server* server_;
  std::string session_ = "default";
  std::shared_ptr<ClientRetryState> retry_;
};

}  // namespace climate::datacube
