// Client-side bindings for the datacube framework — the PyOphidia
// equivalent. Mirrors the session/Cube object model the paper's Listing 1
// uses:
//
//   Client client(server);
//   Cube tmax = client.importnc("day1.nc", "tmax");
//   Cube max_duration = duration.reduce("max", "Max Duration cube");
//   Cube mask = duration.apply("oph_predicate('OPH_INT','OPH_INT',measure,'x','>0','1','0')");
//   Cube count = mask.reduce("sum", "Number of durations cube");
//   count.exportnc2(output_path, output_name);
//
// Cube is a lightweight PID wrapper; all processing is dispatched to the
// server and results stay server-side (in memory) until exported.
#pragma once

#include <string>
#include <vector>

#include "datacube/server.hpp"

namespace climate::datacube {

class Client;

/// Handle to one server-side datacube.
class Cube {
 public:
  Cube() = default;
  /// Binds to an existing server-side cube (normally obtained via Client).
  Cube(Server* server, std::string pid) : server_(server), pid_(std::move(pid)) {}

  const std::string& pid() const { return pid_; }
  bool valid() const { return server_ != nullptr && !pid_.empty(); }

  /// Reduce over the implicit dimension ("max","min","sum","avg","std",
  /// "count"); group 0 collapses the whole array.
  Result<Cube> reduce(const std::string& op, std::size_t group = 0,
                      const std::string& description = "") const;

  /// Apply an array expression (see datacube/expression.hpp).
  Result<Cube> apply(const std::string& expression, const std::string& description = "") const;

  /// Element-wise binary operation against another cube.
  Result<Cube> intercube(const Cube& other, const std::string& op,
                         const std::string& description = "") const;

  /// Inclusive index-range subset of a dimension.
  Result<Cube> subset(const std::string& dim, std::size_t start, std::size_t end,
                      const std::string& description = "") const;

  /// Concatenate along the first explicit dimension.
  Result<Cube> merge(const Cube& other, const std::string& description = "") const;

  /// Concatenate along the implicit (array) dimension.
  Result<Cube> concat(const Cube& other, const std::string& description = "") const;

  /// Collapse an explicit dimension with a reduction ("max","min","sum",
  /// "avg","std","count") — spatial aggregation.
  Result<Cube> aggregate(const std::string& dim, const std::string& op,
                         const std::string& description = "") const;

  /// Export to a CDF-lite file, PyOphidia exportnc2-style.
  Status exportnc2(const std::string& output_path, const std::string& output_name) const;

  /// Schema snapshot.
  Result<CubeSchema> schema() const;

  /// Dense row-major values (synchronizes data to the client).
  Result<std::vector<float>> values() const;

  /// Delete the server-side cube.
  Status del() const;

 private:
  friend class Client;

  Server* server_ = nullptr;
  std::string pid_;
};

/// A connection to the framework front-end.
class Client {
 public:
  /// Binds to a running server (in-process deployment of the framework).
  explicit Client(Server& server) : server_(&server) {}

  /// Imports a variable from a CDF-lite file.
  Result<Cube> importnc(const std::string& path, const std::string& variable,
                        const ImportOptions& options = {});

  /// Creates a cube from client-side data.
  Result<Cube> create_cube(std::string measure, std::vector<DimInfo> explicit_dims,
                           DimInfo implicit_dim, const std::vector<float>& dense,
                           std::string description = "");

  /// Wraps an existing PID.
  Cube attach(const std::string& pid) { return Cube(server_, pid); }

  /// PIDs of every catalogued cube.
  std::vector<std::string> list() const { return server_->list_cubes(); }

  Server& server() { return *server_; }

 private:
  Server* server_;
};

}  // namespace climate::datacube
