// Expression engine for the datacube `apply` operator — the equivalent of
// Ophidia's array primitives (oph_predicate & friends used in Listing 1 of
// the paper).
//
// Expressions operate per row on the implicit array dimension. The variable
// `measure` (alias `x`) is the row's array; arithmetic and comparisons are
// elementwise with scalar broadcasting; functions:
//
//   abs(a), sqrt(a), exp(a), log(a), min(a,b), max(a,b), pow(a,b)
//   predicate(a, 'cond', then, else)   -- elementwise conditional, cond one
//                                         of  >v >=v <v <=v ==v !=v  (e.g.
//                                         predicate(x,'>0',1,0)); the Ophidia
//                                         spelling oph_predicate is accepted
//   wave_duration(a, min_len)          -- a is a 0/1 array; returns an array
//                                         of the same length with the length
//                                         of each qualifying run (>= min_len
//                                         consecutive ones) stored at the
//                                         run's end position, 0 elsewhere.
//                                         This is the "duration cube" input
//                                         of the heat/cold-wave indices.
//   running_max(a), running_sum(a)     -- prefix scans
//   shift(a, k)                        -- shift with zero fill
//
// A parsed Expression is immutable and thread-safe to evaluate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace climate::datacube {

using common::Result;
using common::Status;

namespace detail {
struct Node;
}

/// A compiled array expression.
class Expression {
 public:
  /// Parses the expression text; returns INVALID_ARGUMENT on syntax errors.
  static Result<Expression> parse(const std::string& text);

  Expression() = default;

  /// Evaluates over one row array; output length equals input length unless
  /// the expression is a pure scalar (then length 1).
  std::vector<float> eval(const std::vector<float>& measure) const;

  /// Original source text.
  const std::string& text() const { return text_; }

  bool valid() const { return root_ != nullptr; }

 private:
  std::string text_;
  std::shared_ptr<const detail::Node> root_;
};

/// Computes wave_duration directly (exposed for the reference index
/// implementation and for property tests): lengths of runs of consecutive
/// ones with length >= min_len, written at each run's final position.
std::vector<float> wave_duration(const std::vector<float>& binary, int min_len);

}  // namespace climate::datacube
