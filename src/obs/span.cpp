#include "obs/span.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace climate::obs {
namespace {

std::atomic<std::uint64_t> g_next_span_id{1};
thread_local std::uint64_t t_current_span = 0;

/// Installs the span-id hook into common/log at static-init time, so JSON
/// log records carry the enclosing span id without common/ depending on obs/.
const bool g_log_provider_installed = [] {
  common::set_log_span_provider(&Span::current_id);
  return true;
}();

}  // namespace

SpanCollector& SpanCollector::global() {
  static SpanCollector* collector = new SpanCollector();  // never destroyed
  return *collector;
}

void SpanCollector::set_capacity(std::size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
}

void SpanCollector::record(SpanRecord record) {
  if (approx_size_.load(std::memory_order_relaxed) >= capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = shards_[shard_index()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.records.push_back(std::move(record));
  approx_size_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  std::vector<SpanRecord> all;
  all.reserve(size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    all.insert(all.end(), shard.records.begin(), shard.records.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.start_ns < b.start_ns; });
  return all;
}

void SpanCollector::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.records.clear();
  }
  approx_size_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t Span::current_id() { return t_current_span; }

void Span::begin(std::string_view category, std::string_view name) {
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  category_.assign(category);
  name_.assign(name);
  start_ns_ = now_ns();
}

void Span::finish() {
  t_current_span = parent_;
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.category = std::move(category_);
  record.name = std::move(name_);
  record.tid = thread_id();
  record.start_ns = start_ns_;
  record.end_ns = now_ns();
  SpanCollector::global().record(std::move(record));
}

}  // namespace climate::obs
