// Scoped spans with thread-local context propagation: one workflow run
// yields a single cross-layer trace where, e.g., a datacube operator span
// executed inside a taskrt task body nests under that task's span because
// both ran on the same worker thread.
//
// Spans are RAII: construction stamps the start time and pushes the span
// onto the calling thread's context stack; destruction pops it and appends
// a finished record to the process-wide collector. Records are buffered in
// mutex-guarded per-thread-stripe shards — span granularity in this codebase
// is task/operator/step level (microseconds and up), so an uncontended lock
// per finished span is ns-level noise. The collector caps its memory and
// counts dropped records instead of growing without bound.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace climate::obs {

/// One finished span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;   ///< 0 = root span of its thread at that time.
  std::string category;       ///< Layer: "taskrt", "datacube", "esm", "ml", ...
  std::string name;
  std::uint32_t tid = 0;      ///< obs::thread_id() of the executing thread.
  std::int64_t start_ns = 0;  ///< obs::now_ns() clock.
  std::int64_t end_ns = 0;
};

/// Process-wide sink of finished spans.
class SpanCollector {
 public:
  SpanCollector() = default;
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  static SpanCollector& global();

  /// Maximum records kept (default 1M); further spans are dropped and
  /// counted in dropped().
  void set_capacity(std::size_t capacity);

  void record(SpanRecord record);

  /// Merged copy of every buffered span, ordered by start time.
  std::vector<SpanRecord> snapshot() const;

  std::size_t size() const { return approx_size_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Discards all buffered spans (benches reset between configurations).
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<SpanRecord> records;
  };
  std::array<Shard, kMetricShards> shards_;
  std::atomic<std::size_t> approx_size_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> capacity_{1u << 20};
};

/// RAII span. When the obs layer is compiled out (CLIMATE_OBS_DISABLED) or
/// disabled at runtime, construction and destruction do nothing.
class Span {
 public:
  Span(std::string_view category, std::string_view name) {
#if !defined(CLIMATE_OBS_DISABLED)
    if (enabled()) begin(category, name);
#else
    (void)category;
    (void)name;
#endif
  }
  ~Span() {
#if !defined(CLIMATE_OBS_DISABLED)
    if (active_) finish();
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Id of the innermost open span on this thread (0 if none). Exposed so
  /// instrumentation can log or hand off correlation ids.
  static std::uint64_t current_id();

  std::uint64_t id() const { return id_; }

 private:
  void begin(std::string_view category, std::string_view name);
  void finish();

  bool active_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::int64_t start_ns_ = 0;
  std::string category_;
  std::string name_;
};

}  // namespace climate::obs
