#include "obs/metrics.hpp"

#include <chrono>

namespace climate::obs {
namespace {

std::atomic<std::uint32_t> g_next_thread_id{0};
std::atomic<bool> g_enabled{true};

struct Epoch {
  std::chrono::steady_clock::time_point steady;
  std::int64_t wall_ns;
};

const Epoch& epoch() {
  static const Epoch e = [] {
    Epoch out;
    out.steady = std::chrono::steady_clock::now();
    out.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
    return out;
  }();
  return e;
}

}  // namespace

std::uint32_t thread_id() {
  thread_local const std::uint32_t id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void set_enabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch().steady)
      .count();
}

std::int64_t wall_ns_at_epoch() { return epoch().wall_ns; }

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds_ns();
  for (Shard& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

std::vector<double> Histogram::default_latency_bounds_ns() {
  std::vector<double> bounds;
  double bound = 1e3;  // 1 us
  for (int i = 0; i < 26; ++i) {
    bounds.push_back(bound);
    bound *= 2.0;
  }
  return bounds;  // last bucket ~34 s; beyond that lands in +Inf
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_.insert_or_assign(std::string(name), std::string(help));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) snap.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : histograms_) snap.histograms[name] = histogram->snapshot();
  snap.help.insert(help_.begin(), help_.end());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace climate::obs
