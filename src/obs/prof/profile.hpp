// Workflow flight recorder (ISSUE 3 tentpole): post-hoc attribution profiler
// over an executed taskrt DAG.
//
// The runtime stamps the full task lifecycle (submit -> ready -> queued ->
// start -> end, plus transfer/exec/checkpoint components); analyze() turns
// one such trace into an Analysis that answers the questions a workflow
// author actually asks after a run:
//
//   * where did the time go, per task? (dependency wait vs. queue wait vs.
//     data transfer vs. body execution vs. runtime overhead)
//   * what was the critical path, and which task functions dominate it?
//   * how much slack did off-path tasks have before delaying a successor?
//   * how busy was each node over time, and how deep were its queues?
//
// The critical path is reconstructed backwards from the latest-ending task
// via the "binding" predecessor (the dependency that finished last). Because
// a task only becomes ready once every dependency has ended, consecutive
// path tasks decompose cleanly into on-task segments [start, end] and wait
// segments [end(prev), start(cur)]; per-function critical_ns plus the total
// critical_wait_ns therefore sum exactly to critical_path_ns, which in turn
// matches Trace::makespan_ns() up to scheduling jitter (the walk's root is
// normally the globally first-starting task).
//
// This layer sits above both obs/ and taskrt/ (library climate_prof) so that
// neither grows a dependency on the other beyond the existing
// taskrt -> obs edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "taskrt/runtime.hpp"
#include "taskrt/trace.hpp"

namespace climate::obs::prof {

/// Knobs for analyze(). Defaults fit interactive reports.
struct AnalyzeOptions {
  /// Buckets of the per-node utilization / queue-depth timelines.
  std::size_t timeline_buckets = 60;
  /// Rows shown per section of text_report() (functions, nodes, slack).
  std::size_t report_rows = 12;
};

/// One task's cost breakdown. Stamps are on the obs::now_ns() clock; the
/// *_ns components partition the task's life:
///   submit --dep_wait--> ready --queue_wait--> start
///          --transfer + exec + overhead--> end [--checkpoint--> saved]
struct TaskCost {
  taskrt::TaskId id = 0;
  std::string name;
  taskrt::TaskState state = taskrt::TaskState::kPending;
  int node = -1;
  std::int64_t submit_ns = 0;
  std::int64_t start_ns = -1;
  std::int64_t end_ns = -1;
  std::int64_t dep_wait_ns = 0;    ///< submit -> all dependencies satisfied.
  std::int64_t queue_wait_ns = 0;  ///< Last enqueue -> dequeued by a worker.
  std::int64_t transfer_ns = 0;    ///< Input staging + simulated interconnect.
  std::int64_t exec_ns = 0;        ///< Task body (summed over retries).
  std::int64_t checkpoint_ns = 0;  ///< Checkpoint save after completion.
  std::int64_t overhead_ns = 0;    ///< (end-start) - transfer - exec, >= 0.
  /// Realized slack: how much later this task could have finished without
  /// moving any executed successor's start (0 for tasks that gated one).
  std::int64_t slack_ns = 0;
  bool on_critical_path = false;
  std::vector<taskrt::TaskId> deps;

  /// Wall time on a worker (start -> end); 0 when the task never ran.
  std::int64_t busy_ns() const {
    return (start_ns >= 0 && end_ns > start_ns) ? end_ns - start_ns : 0;
  }
};

/// Aggregate over all tasks of one function name.
struct FunctionStat {
  std::string name;
  std::size_t count = 0;           ///< Executed tasks of this function.
  std::int64_t busy_ns = 0;        ///< Sum of start->end wall time.
  std::int64_t exec_ns = 0;
  std::int64_t transfer_ns = 0;
  std::int64_t queue_wait_ns = 0;
  std::size_t critical_count = 0;  ///< Tasks of this function on the path.
  std::int64_t critical_ns = 0;    ///< On-path start->end time.
  double critical_share = 0.0;     ///< critical_ns / critical_path_ns.
};

/// Fixed-bucket time series over the run (values[i] covers
/// [origin_ns + i*bucket_ns, origin_ns + (i+1)*bucket_ns)).
struct Timeline {
  std::int64_t origin_ns = 0;
  std::int64_t bucket_ns = 0;
  std::vector<double> values;
};

/// Per-node activity summary. `utilization` is busy_ns over the makespan of
/// a single lane; nodes with several cores can exceed 1.0.
struct NodeStat {
  int node = -1;
  std::size_t tasks = 0;
  std::int64_t busy_ns = 0;
  double utilization = 0.0;
  double idle_fraction = 0.0;       ///< max(0, 1 - utilization).
  Timeline utilization_timeline;    ///< Mean busy lanes per bucket.
  Timeline queue_depth_timeline;    ///< Mean ready-queue depth per bucket.
};

/// Full result of analyze(): per-task costs, the critical path, per-function
/// and per-node rollups, and renderers for the run-report artifacts.
struct Analysis {
  std::int64_t run_start_ns = 0;      ///< Earliest task start.
  std::int64_t run_end_ns = 0;        ///< Latest task end.
  std::int64_t makespan_ns = 0;
  std::int64_t critical_path_ns = 0;  ///< end(last path task) - start(first).
  std::int64_t critical_wait_ns = 0;  ///< Gap time between path tasks.
  std::size_t executed_tasks = 0;
  std::size_t failed_tasks = 0;
  std::vector<TaskCost> tasks;                 ///< Trace order.
  std::vector<taskrt::TaskId> critical_path;   ///< Execution order.
  std::vector<FunctionStat> functions;         ///< Sorted by critical_ns desc.
  std::vector<NodeStat> nodes;                 ///< Sorted by node index.

  /// Totals across executed tasks (useful for attribution pies).
  std::int64_t total_dep_wait_ns = 0;
  std::int64_t total_queue_wait_ns = 0;
  std::int64_t total_transfer_ns = 0;
  std::int64_t total_exec_ns = 0;
  std::int64_t total_checkpoint_ns = 0;
  std::int64_t total_overhead_ns = 0;

  /// Lookup by task id; nullptr when the id is not in the trace.
  const TaskCost* find(taskrt::TaskId id) const;

  /// Human-readable run report ("esm_step: 61% of critical path; node2 idle
  /// 34%"), sections truncated to AnalyzeOptions::report_rows.
  std::string text_report() const;

  /// The same content as structured JSON (machine-readable artifact).
  common::Json json_report() const;

  /// Graphviz DOT of the executed DAG with the critical path highlighted
  /// (red, thick); node fill colour still encodes the function name.
  std::string to_dot() const;

 private:
  friend Analysis analyze(const taskrt::Trace&, const AnalyzeOptions&);
  std::size_t report_rows_ = 12;
};

/// Runs the full attribution analysis over an executed trace.
Analysis analyze(const taskrt::Trace& trace, const AnalyzeOptions& options = {});

/// Convenience accessor: profile a runtime's current trace.
inline Analysis profile(const taskrt::Runtime& runtime, const AnalyzeOptions& options = {}) {
  return analyze(runtime.trace(), options);
}

/// Dependency edges of the executed DAG as Chrome-trace flow arrows between
/// the per-node task tracks produced by taskrt::to_obs_track_events (arrow
/// endpoints are clamped inside the producing/consuming slices).
std::vector<FlowEvent> to_flow_events(const taskrt::Trace& trace);

/// Flat per-(category, name) rollup of recorded spans, for binaries that do
/// not run the task runtime (e.g. the in-memory datacube benches).
struct SpanGroupStat {
  std::string category;
  std::string name;
  std::size_t count = 0;
  std::int64_t total_ns = 0;
  double wall_share = 0.0;  ///< total_ns / wall_ns (nesting can exceed 1).
};

struct SpanProfile {
  std::int64_t wall_ns = 0;  ///< First span start -> last span end.
  std::vector<SpanGroupStat> groups;  ///< Sorted by total_ns desc.

  std::string text_report(std::size_t max_rows = 12) const;
};

SpanProfile profile_spans(const std::vector<SpanRecord>& spans);

}  // namespace climate::obs::prof
