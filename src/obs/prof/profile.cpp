#include "obs/prof/profile.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/strings.hpp"

namespace climate::obs::prof {
namespace {

using taskrt::TaskId;
using taskrt::TaskState;
using taskrt::TaskTrace;

// Same qualitative palette as taskrt::Trace::to_dot so the profiled graph
// stays visually comparable with the plain Figure-3 rendering.
const char* kPalette[] = {"#4C72B0", "#DD8452", "#55A868", "#C44E52", "#8172B3",
                          "#937860", "#DA8BC3", "#8C8C8C", "#CCB974", "#64B5CD",
                          "#2F4B7C", "#FFA600", "#A05195", "#F95D6A", "#665191"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

bool executed(const TaskTrace& t) { return t.start_ns >= 0 && t.end_ns >= t.start_ns; }

std::string fmt_dur(std::int64_t ns) {
  if (ns < 0) ns = 0;
  if (ns < 10'000) return common::format("%lld ns", static_cast<long long>(ns));
  if (ns < 10'000'000) return common::format("%.1f us", static_cast<double>(ns) / 1e3);
  if (ns < 10'000'000'000) return common::format("%.1f ms", static_cast<double>(ns) / 1e6);
  return common::format("%.2f s", static_cast<double>(ns) / 1e9);
}

double share(std::int64_t part, std::int64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole) : 0.0;
}

/// Adds the interval [a, b) into the timeline, spreading the overlap of each
/// bucket as a fraction of the bucket width (so values are mean lane counts).
void accumulate(Timeline& timeline, std::int64_t a, std::int64_t b) {
  if (timeline.bucket_ns <= 0 || timeline.values.empty() || b <= a) return;
  const std::int64_t span_end =
      timeline.origin_ns + timeline.bucket_ns * static_cast<std::int64_t>(timeline.values.size());
  a = std::max(a, timeline.origin_ns);
  b = std::min(b, span_end);
  if (b <= a) return;
  std::size_t bucket = static_cast<std::size_t>((a - timeline.origin_ns) / timeline.bucket_ns);
  for (; bucket < timeline.values.size(); ++bucket) {
    const std::int64_t lo = timeline.origin_ns + timeline.bucket_ns * static_cast<std::int64_t>(bucket);
    const std::int64_t hi = lo + timeline.bucket_ns;
    if (lo >= b) break;
    const std::int64_t overlap = std::min(b, hi) - std::max(a, lo);
    if (overlap > 0) {
      timeline.values[bucket] += static_cast<double>(overlap) / static_cast<double>(timeline.bucket_ns);
    }
  }
}

common::Json timeline_json(const Timeline& timeline) {
  common::Json::Array values;
  for (double v : timeline.values) values.push_back(v);
  common::Json::Object out;
  out["origin_ns"] = timeline.origin_ns;
  out["bucket_ns"] = timeline.bucket_ns;
  out["values"] = common::Json(std::move(values));
  return common::Json(std::move(out));
}

}  // namespace

const TaskCost* Analysis::find(TaskId id) const {
  for (const TaskCost& c : tasks) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

Analysis analyze(const taskrt::Trace& trace, const AnalyzeOptions& options) {
  Analysis analysis;
  analysis.report_rows_ = options.report_rows == 0 ? 12 : options.report_rows;
  const std::vector<TaskTrace>& traced = trace.tasks();

  // ---------------------------------------------------- per-task costs
  std::map<TaskId, std::size_t> index;  // id -> position in analysis.tasks
  std::int64_t run_start = -1;
  std::int64_t run_end = -1;
  for (const TaskTrace& t : traced) {
    TaskCost c;
    c.id = t.id;
    c.name = t.name;
    c.state = t.state;
    c.node = t.node;
    c.submit_ns = t.submit_ns;
    c.start_ns = t.start_ns;
    c.end_ns = t.end_ns;
    c.deps = t.deps;
    if (t.ready_ns >= 0) c.dep_wait_ns = std::max<std::int64_t>(0, t.ready_ns - t.submit_ns);
    if (t.start_ns >= 0 && t.queued_ns >= 0) {
      c.queue_wait_ns = std::max<std::int64_t>(0, t.start_ns - t.queued_ns);
    }
    c.transfer_ns = t.transfer_ns;
    c.exec_ns = t.exec_ns;
    c.checkpoint_ns = t.checkpoint_ns;
    if (executed(t)) {
      ++analysis.executed_tasks;
      c.overhead_ns =
          std::max<std::int64_t>(0, (t.end_ns - t.start_ns) - t.transfer_ns - t.exec_ns);
      if (run_start < 0 || t.start_ns < run_start) run_start = t.start_ns;
      run_end = std::max(run_end, t.end_ns);
    }
    if (t.state == TaskState::kFailed) ++analysis.failed_tasks;
    analysis.total_dep_wait_ns += c.dep_wait_ns;
    analysis.total_queue_wait_ns += c.queue_wait_ns;
    analysis.total_transfer_ns += c.transfer_ns;
    analysis.total_exec_ns += c.exec_ns;
    analysis.total_checkpoint_ns += c.checkpoint_ns;
    analysis.total_overhead_ns += c.overhead_ns;
    index.emplace(c.id, analysis.tasks.size());
    analysis.tasks.push_back(std::move(c));
  }
  if (run_start >= 0) {
    analysis.run_start_ns = run_start;
    analysis.run_end_ns = run_end;
    analysis.makespan_ns = run_end - run_start;
  }

  // -------------------------------------------------- critical path
  // Backward walk from the latest-ending task through the binding
  // predecessor: the dependency that finished last is the one whose
  // completion released this task. A task with no recorded predecessor may
  // still be gated by a master-side sync barrier (its input was built from
  // synced results, so it could not be *submitted* before those producers
  // finished) — bridge to the latest task ending at or before its submit
  // stamp so the path keeps spanning the run across such barriers. The
  // bridge predecessor always ends strictly before the current task does,
  // so the walk still terminates.
  const TaskTrace* tail = nullptr;
  for (const TaskTrace& t : traced) {
    if (executed(t) && (tail == nullptr || t.end_ns > tail->end_ns)) tail = &t;
  }
  if (tail != nullptr) {
    std::vector<TaskId> path;
    const TaskTrace* current = tail;
    while (current != nullptr && path.size() <= traced.size()) {
      path.push_back(current->id);
      const TaskTrace* binding = nullptr;
      for (TaskId dep : current->deps) {
        auto it = index.find(dep);
        if (it == index.end()) continue;
        const TaskTrace& candidate = traced[it->second];
        if (!executed(candidate)) continue;
        if (binding == nullptr || candidate.end_ns > binding->end_ns) binding = &candidate;
      }
      if (binding == nullptr && current->submit_ns >= 0) {
        for (const TaskTrace& candidate : traced) {
          if (!executed(candidate) || candidate.id == current->id) continue;
          if (candidate.end_ns > current->submit_ns) continue;
          if (binding == nullptr || candidate.end_ns > binding->end_ns) binding = &candidate;
        }
      }
      current = binding;
    }
    std::reverse(path.begin(), path.end());
    analysis.critical_path = std::move(path);

    const TaskCost* prev = nullptr;
    for (TaskId id : analysis.critical_path) {
      TaskCost& c = analysis.tasks[index.at(id)];
      c.on_critical_path = true;
      if (prev != nullptr) {
        analysis.critical_wait_ns += std::max<std::int64_t>(0, c.start_ns - prev->end_ns);
      }
      prev = &c;
    }
    const TaskCost& head = analysis.tasks[index.at(analysis.critical_path.front())];
    analysis.critical_path_ns = tail->end_ns - head.start_ns;
  }

  // ------------------------------------------------------------ slack
  // Realized slack: the distance from a task's end to the earliest start of
  // any executed successor (or to the end of the run for sinks).
  std::map<TaskId, std::int64_t> min_successor_start;
  for (const TaskCost& c : analysis.tasks) {
    if (c.start_ns < 0) continue;
    for (TaskId dep : c.deps) {
      auto [it, inserted] = min_successor_start.emplace(dep, c.start_ns);
      if (!inserted) it->second = std::min(it->second, c.start_ns);
    }
  }
  for (TaskCost& c : analysis.tasks) {
    if (c.start_ns < 0 || c.end_ns < 0) continue;
    auto it = min_successor_start.find(c.id);
    const std::int64_t bound = it != min_successor_start.end() ? it->second : analysis.run_end_ns;
    c.slack_ns = std::max<std::int64_t>(0, bound - c.end_ns);
  }

  // ------------------------------------------------ function rollups
  std::map<std::string, FunctionStat> functions;
  for (const TaskCost& c : analysis.tasks) {
    if (c.busy_ns() == 0) continue;
    FunctionStat& f = functions[c.name];
    f.name = c.name;
    ++f.count;
    f.busy_ns += c.busy_ns();
    f.exec_ns += c.exec_ns;
    f.transfer_ns += c.transfer_ns;
    f.queue_wait_ns += c.queue_wait_ns;
    if (c.on_critical_path) {
      ++f.critical_count;
      f.critical_ns += c.busy_ns();
    }
  }
  for (auto& [name, f] : functions) {
    f.critical_share = share(f.critical_ns, analysis.critical_path_ns);
    analysis.functions.push_back(f);
  }
  std::sort(analysis.functions.begin(), analysis.functions.end(),
            [](const FunctionStat& a, const FunctionStat& b) {
              if (a.critical_ns != b.critical_ns) return a.critical_ns > b.critical_ns;
              if (a.busy_ns != b.busy_ns) return a.busy_ns > b.busy_ns;
              return a.name < b.name;
            });

  // ---------------------------------------------------- node rollups
  const std::size_t buckets = std::max<std::size_t>(1, options.timeline_buckets);
  const std::int64_t bucket_ns =
      analysis.makespan_ns > 0
          ? (analysis.makespan_ns + static_cast<std::int64_t>(buckets) - 1) /
                static_cast<std::int64_t>(buckets)
          : 1;
  std::map<int, NodeStat> nodes;
  for (const TaskCost& c : analysis.tasks) {
    if (c.node < 0 || c.busy_ns() == 0) continue;
    NodeStat& n = nodes[c.node];
    if (n.node < 0) {
      n.node = c.node;
      for (Timeline* timeline : {&n.utilization_timeline, &n.queue_depth_timeline}) {
        timeline->origin_ns = analysis.run_start_ns;
        timeline->bucket_ns = bucket_ns;
        timeline->values.assign(buckets, 0.0);
      }
    }
    ++n.tasks;
    n.busy_ns += c.busy_ns();
    accumulate(n.utilization_timeline, c.start_ns, c.end_ns);
    accumulate(n.queue_depth_timeline, c.start_ns - c.queue_wait_ns, c.start_ns);
  }
  for (auto& [node, n] : nodes) {
    n.utilization = share(n.busy_ns, analysis.makespan_ns);
    n.idle_fraction = std::max(0.0, 1.0 - n.utilization);
    analysis.nodes.push_back(std::move(n));
  }
  return analysis;
}

std::string Analysis::text_report() const {
  std::string out = "=== workflow run report ===\n";
  out += common::format("tasks: %zu executed", executed_tasks);
  if (failed_tasks > 0) out += common::format(" (%zu failed)", failed_tasks);
  out += common::format(" on %zu nodes; makespan %s\n", nodes.size(),
                        fmt_dur(makespan_ns).c_str());
  out += common::format(
      "critical path: %zu tasks, %s (%.1f%% of makespan), scheduling wait on path %s (%.1f%%)\n",
      critical_path.size(), fmt_dur(critical_path_ns).c_str(),
      100.0 * share(critical_path_ns, makespan_ns), fmt_dur(critical_wait_ns).c_str(),
      100.0 * share(critical_wait_ns, critical_path_ns));
  out += common::format(
      "time attribution (all tasks): exec %s | transfer %s | queue wait %s | dep wait %s | "
      "overhead %s | checkpoint %s\n",
      fmt_dur(total_exec_ns).c_str(), fmt_dur(total_transfer_ns).c_str(),
      fmt_dur(total_queue_wait_ns).c_str(), fmt_dur(total_dep_wait_ns).c_str(),
      fmt_dur(total_overhead_ns).c_str(), fmt_dur(total_checkpoint_ns).c_str());

  out += "critical-path share by function:\n";
  std::size_t rows = 0;
  for (const FunctionStat& f : functions) {
    if (f.critical_ns == 0) continue;
    if (++rows > report_rows_) {
      out += "  ...\n";
      break;
    }
    out += common::format("  %-24s %5.1f%%  %s on path (%zu/%zu tasks; exec %s, queue %s)\n",
                          f.name.c_str(), 100.0 * f.critical_share, fmt_dur(f.critical_ns).c_str(),
                          f.critical_count, f.count, fmt_dur(f.exec_ns).c_str(),
                          fmt_dur(f.queue_wait_ns).c_str());
  }
  if (critical_wait_ns > 0) {
    out += common::format("  %-24s %5.1f%%  %s between path tasks\n", "(scheduling wait)",
                          100.0 * share(critical_wait_ns, critical_path_ns),
                          fmt_dur(critical_wait_ns).c_str());
  }

  out += "nodes:\n";
  rows = 0;
  for (const NodeStat& n : nodes) {
    if (++rows > report_rows_) {
      out += "  ...\n";
      break;
    }
    out += common::format("  node%-3d util %5.1f%%  idle %5.1f%%  %zu tasks, busy %s\n", n.node,
                          100.0 * n.utilization, 100.0 * n.idle_fraction, n.tasks,
                          fmt_dur(n.busy_ns).c_str());
  }

  std::vector<const TaskCost*> off_path;
  for (const TaskCost& c : tasks) {
    if (!c.on_critical_path && c.busy_ns() > 0 && c.slack_ns > 0) off_path.push_back(&c);
  }
  std::sort(off_path.begin(), off_path.end(),
            [](const TaskCost* a, const TaskCost* b) { return a->slack_ns > b->slack_ns; });
  if (!off_path.empty()) {
    out += "top slack among off-path tasks:\n";
    for (std::size_t i = 0; i < off_path.size() && i < report_rows_; ++i) {
      const TaskCost& c = *off_path[i];
      out += common::format("  t%-5llu %-24s slack %s (node %d)\n",
                            static_cast<unsigned long long>(c.id), c.name.c_str(),
                            fmt_dur(c.slack_ns).c_str(), c.node);
    }
  }
  return out;
}

common::Json Analysis::json_report() const {
  common::Json::Object summary;
  summary["executed_tasks"] = executed_tasks;
  summary["failed_tasks"] = failed_tasks;
  summary["makespan_ns"] = makespan_ns;
  summary["critical_path_ns"] = critical_path_ns;
  summary["critical_wait_ns"] = critical_wait_ns;
  summary["critical_path_tasks"] = critical_path.size();
  summary["total_dep_wait_ns"] = total_dep_wait_ns;
  summary["total_queue_wait_ns"] = total_queue_wait_ns;
  summary["total_transfer_ns"] = total_transfer_ns;
  summary["total_exec_ns"] = total_exec_ns;
  summary["total_checkpoint_ns"] = total_checkpoint_ns;
  summary["total_overhead_ns"] = total_overhead_ns;

  common::Json::Array path;
  for (taskrt::TaskId id : critical_path) path.push_back(static_cast<std::int64_t>(id));

  common::Json::Array function_rows;
  for (const FunctionStat& f : functions) {
    common::Json::Object row;
    row["name"] = f.name;
    row["count"] = f.count;
    row["busy_ns"] = f.busy_ns;
    row["exec_ns"] = f.exec_ns;
    row["transfer_ns"] = f.transfer_ns;
    row["queue_wait_ns"] = f.queue_wait_ns;
    row["critical_count"] = f.critical_count;
    row["critical_ns"] = f.critical_ns;
    row["critical_share"] = f.critical_share;
    function_rows.push_back(common::Json(std::move(row)));
  }

  common::Json::Array node_rows;
  for (const NodeStat& n : nodes) {
    common::Json::Object row;
    row["node"] = n.node;
    row["tasks"] = n.tasks;
    row["busy_ns"] = n.busy_ns;
    row["utilization"] = n.utilization;
    row["idle_fraction"] = n.idle_fraction;
    row["utilization_timeline"] = timeline_json(n.utilization_timeline);
    row["queue_depth_timeline"] = timeline_json(n.queue_depth_timeline);
    node_rows.push_back(common::Json(std::move(row)));
  }

  common::Json::Array task_rows;
  for (const TaskCost& c : tasks) {
    common::Json::Object row;
    row["id"] = static_cast<std::int64_t>(c.id);
    row["name"] = c.name;
    row["state"] = taskrt::task_state_name(c.state);
    row["node"] = c.node;
    row["start_ns"] = c.start_ns;
    row["end_ns"] = c.end_ns;
    row["dep_wait_ns"] = c.dep_wait_ns;
    row["queue_wait_ns"] = c.queue_wait_ns;
    row["transfer_ns"] = c.transfer_ns;
    row["exec_ns"] = c.exec_ns;
    row["checkpoint_ns"] = c.checkpoint_ns;
    row["overhead_ns"] = c.overhead_ns;
    row["slack_ns"] = c.slack_ns;
    row["on_critical_path"] = c.on_critical_path;
    task_rows.push_back(common::Json(std::move(row)));
  }

  common::Json::Object doc;
  doc["summary"] = common::Json(std::move(summary));
  doc["critical_path"] = common::Json(std::move(path));
  doc["functions"] = common::Json(std::move(function_rows));
  doc["nodes"] = common::Json(std::move(node_rows));
  doc["tasks"] = common::Json(std::move(task_rows));
  return common::Json(std::move(doc));
}

std::string Analysis::to_dot() const {
  std::map<std::string, std::size_t> colour_of;
  for (const TaskCost& c : tasks) colour_of.emplace(c.name, colour_of.size());

  std::string dot =
      "digraph workflow_profile {\n  rankdir=TB;\n"
      "  node [shape=circle, style=filled, fontsize=9];\n"
      "  // thick red outline/edges = critical path\n";
  for (const TaskCost& c : tasks) {
    const char* fill = kPalette[colour_of[c.name] % kPaletteSize];
    if (c.on_critical_path) {
      dot += common::format(
          "  t%llu [label=\"%llu\", fillcolor=\"%s\", color=\"red\", penwidth=3, "
          "tooltip=\"%s (critical)\"];\n",
          static_cast<unsigned long long>(c.id), static_cast<unsigned long long>(c.id), fill,
          c.name.c_str());
    } else {
      dot += common::format("  t%llu [label=\"%llu\", fillcolor=\"%s\", tooltip=\"%s\"];\n",
                            static_cast<unsigned long long>(c.id),
                            static_cast<unsigned long long>(c.id), fill, c.name.c_str());
    }
  }
  std::map<taskrt::TaskId, taskrt::TaskId> path_edge;  // predecessor -> successor
  for (std::size_t i = 1; i < critical_path.size(); ++i) {
    path_edge[critical_path[i - 1]] = critical_path[i];
  }
  for (const TaskCost& c : tasks) {
    for (taskrt::TaskId dep : c.deps) {
      auto it = path_edge.find(dep);
      const bool critical = it != path_edge.end() && it->second == c.id;
      if (critical) path_edge.erase(it);
      dot += common::format("  t%llu -> t%llu%s;\n", static_cast<unsigned long long>(dep),
                            static_cast<unsigned long long>(c.id),
                            critical ? " [color=\"red\", penwidth=2]" : "");
    }
  }
  // Remaining path pairs have no data edge: they bridge a master-side sync
  // barrier. Draw them dashed so the critical path stays connected.
  for (const auto& [from, to] : path_edge) {
    dot += common::format(
        "  t%llu -> t%llu [style=dashed, color=\"red\", penwidth=2, tooltip=\"sync barrier\"];\n",
        static_cast<unsigned long long>(from), static_cast<unsigned long long>(to));
  }
  dot += "}\n";
  return dot;
}

std::vector<FlowEvent> to_flow_events(const taskrt::Trace& trace) {
  std::map<TaskId, const TaskTrace*> by_id;
  for (const TaskTrace& t : trace.tasks()) by_id.emplace(t.id, &t);

  std::vector<FlowEvent> flows;
  std::uint64_t next_id = 1;
  for (const TaskTrace& t : trace.tasks()) {
    if (!executed(t)) continue;
    for (TaskId dep : t.deps) {
      auto it = by_id.find(dep);
      if (it == by_id.end() || !executed(*it->second)) continue;
      const TaskTrace& producer = *it->second;
      FlowEvent flow;
      flow.id = next_id++;
      flow.name = producer.name + " -> " + t.name;
      flow.category = "taskrt.dep";
      flow.from_track = common::format("node%d", producer.node);
      // Clamp endpoints strictly inside the two slices so the trace viewer
      // can bind the arrow to them.
      flow.from_ns = std::max(producer.start_ns, producer.end_ns - 1);
      flow.to_track = common::format("node%d", t.node);
      flow.to_ns = std::min(t.end_ns, t.start_ns + 1);
      flows.push_back(std::move(flow));
    }
  }
  return flows;
}

SpanProfile profile_spans(const std::vector<SpanRecord>& spans) {
  SpanProfile profile;
  if (spans.empty()) return profile;
  std::int64_t first = spans.front().start_ns;
  std::int64_t last = spans.front().end_ns;
  std::map<std::pair<std::string, std::string>, SpanGroupStat> groups;
  for (const SpanRecord& span : spans) {
    first = std::min(first, span.start_ns);
    last = std::max(last, span.end_ns);
    SpanGroupStat& g = groups[{span.category, span.name}];
    g.category = span.category;
    g.name = span.name;
    ++g.count;
    g.total_ns += std::max<std::int64_t>(0, span.end_ns - span.start_ns);
  }
  profile.wall_ns = std::max<std::int64_t>(0, last - first);
  for (auto& [key, g] : groups) {
    g.wall_share = share(g.total_ns, profile.wall_ns);
    profile.groups.push_back(std::move(g));
  }
  std::sort(profile.groups.begin(), profile.groups.end(),
            [](const SpanGroupStat& a, const SpanGroupStat& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              if (a.category != b.category) return a.category < b.category;
              return a.name < b.name;
            });
  return profile;
}

std::string SpanProfile::text_report(std::size_t max_rows) const {
  std::string out = "=== span profile ===\n";
  out += common::format("wall %s, %zu span groups\n", fmt_dur(wall_ns).c_str(), groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (i >= max_rows) {
      out += "  ...\n";
      break;
    }
    const SpanGroupStat& g = groups[i];
    out += common::format("  %-12s %-28s x%-6zu %10s  %5.1f%% of wall\n", g.category.c_str(),
                          g.name.c_str(), g.count, fmt_dur(g.total_ns).c_str(),
                          100.0 * g.wall_share);
  }
  return out;
}

}  // namespace climate::obs::prof
