// Umbrella header of the observability subsystem, plus the instrumentation
// macros every layer uses.
//
// Two knobs control cost:
//  - compile time: configure with -DCLIMATE_OBS=OFF (defines
//    CLIMATE_OBS_DISABLED) and every OBS_* macro expands to nothing — zero
//    code, zero data, call-site arguments are not evaluated;
//  - run time: obs::set_enabled(false) short-circuits the macros behind one
//    relaxed atomic load (how bench_obs_overhead measures instrumentation
//    cost inside a single binary).
//
// Hot paths use the macros below with string-literal names: the metric
// handle is resolved once into a function-local static, so the steady-state
// cost is one branch plus one relaxed atomic update. Call sites whose metric
// name is dynamic (per-task-function histograms, per-layer timings) use the
// inline helpers, paying one registry map lookup per call — acceptable at
// task/operator granularity.
#pragma once

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace climate::obs {

#if defined(CLIMATE_OBS_DISABLED)

inline void counter_add(std::string_view, std::uint64_t = 1) {}
inline void gauge_set(std::string_view, std::int64_t) {}
inline void observe_histogram(std::string_view, double) {}

#else

/// Dynamic-name counter increment (one registry lookup per call).
inline void counter_add(std::string_view name, std::uint64_t delta = 1) {
  if (enabled()) MetricsRegistry::global().counter(name)->add(delta);
}

/// Dynamic-name gauge set.
inline void gauge_set(std::string_view name, std::int64_t value) {
  if (enabled()) MetricsRegistry::global().gauge(name)->set(value);
}

/// Dynamic-name histogram observation.
inline void observe_histogram(std::string_view name, double value) {
  if (enabled()) MetricsRegistry::global().histogram(name)->observe(value);
}

#endif  // CLIMATE_OBS_DISABLED

/// RAII latency timer feeding a pre-resolved histogram (null = no-op).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram) {
#if !defined(CLIMATE_OBS_DISABLED)
    if (enabled() && histogram != nullptr) {
      histogram_ = histogram;
      start_ns_ = now_ns();
    }
#else
    (void)histogram;
#endif
  }
  ~ScopedLatency() {
#if !defined(CLIMATE_OBS_DISABLED)
    if (histogram_ != nullptr) histogram_->observe_ns(now_ns() - start_ns_);
#endif
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace climate::obs

#define CLIMATE_OBS_CONCAT_IMPL(a, b) a##b
#define CLIMATE_OBS_CONCAT(a, b) CLIMATE_OBS_CONCAT_IMPL(a, b)

#if defined(CLIMATE_OBS_DISABLED)

#define OBS_COUNTER_ADD(name, delta) \
  do {                               \
  } while (0)
#define OBS_GAUGE_SET(name, value) \
  do {                             \
  } while (0)
#define OBS_GAUGE_ADD(name, delta) \
  do {                             \
  } while (0)
#define OBS_HISTOGRAM_OBSERVE(name, value) \
  do {                                     \
  } while (0)
#define OBS_SCOPED_LATENCY(name) \
  do {                           \
  } while (0)
#define OBS_SPAN(category, name) \
  do {                           \
  } while (0)

#else

/// Adds `delta` to the counter `name` (string literal; handle cached).
#define OBS_COUNTER_ADD(name, delta)                               \
  do {                                                             \
    if (::climate::obs::enabled()) {                               \
      static ::climate::obs::Counter* obs_counter_ =               \
          ::climate::obs::MetricsRegistry::global().counter(name); \
      obs_counter_->add(delta);                                    \
    }                                                              \
  } while (0)

/// Sets the gauge `name` to `value`.
#define OBS_GAUGE_SET(name, value)                               \
  do {                                                           \
    if (::climate::obs::enabled()) {                             \
      static ::climate::obs::Gauge* obs_gauge_ =                 \
          ::climate::obs::MetricsRegistry::global().gauge(name); \
      obs_gauge_->set(value);                                    \
    }                                                            \
  } while (0)

/// Adds `delta` (may be negative) to the gauge `name`.
#define OBS_GAUGE_ADD(name, delta)                               \
  do {                                                           \
    if (::climate::obs::enabled()) {                             \
      static ::climate::obs::Gauge* obs_gauge_ =                 \
          ::climate::obs::MetricsRegistry::global().gauge(name); \
      obs_gauge_->add(delta);                                    \
    }                                                            \
  } while (0)

/// Records `value` into the histogram `name` (default latency buckets).
#define OBS_HISTOGRAM_OBSERVE(name, value)                           \
  do {                                                               \
    if (::climate::obs::enabled()) {                                 \
      static ::climate::obs::Histogram* obs_histogram_ =             \
          ::climate::obs::MetricsRegistry::global().histogram(name); \
      obs_histogram_->observe(value);                                \
    }                                                                \
  } while (0)

/// Times the enclosing scope into the histogram `name` (nanoseconds).
#define OBS_SCOPED_LATENCY(name)                                               \
  static ::climate::obs::Histogram* CLIMATE_OBS_CONCAT(obs_hist_, __LINE__) =  \
      ::climate::obs::MetricsRegistry::global().histogram(name);               \
  ::climate::obs::ScopedLatency CLIMATE_OBS_CONCAT(obs_latency_, __LINE__)(    \
      CLIMATE_OBS_CONCAT(obs_hist_, __LINE__))

/// Opens a scoped span; `category` is the layer, `name` the operation.
#define OBS_SPAN(category, name) \
  ::climate::obs::Span CLIMATE_OBS_CONCAT(obs_span_, __LINE__)(category, name)

#endif  // CLIMATE_OBS_DISABLED
