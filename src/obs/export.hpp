// Exporters for the observability layer:
//  - Chrome trace-event JSON (loads in Perfetto / chrome://tracing): spans
//    as complete ("X") events grouped by thread, plus optional external
//    tracks (e.g. the taskrt::Trace task records, one track per node);
//  - Prometheus text exposition of a metrics snapshot;
//  - a plain JSON snapshot dump for benches and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace climate::obs {

/// One externally produced complete event, merged into the Chrome trace as
/// its own track group. Used to overlay the taskrt runtime trace (a track
/// per node) onto the span timeline; timestamps must be on the obs::now_ns()
/// clock.
struct TrackEvent {
  std::string track;   ///< Track label, e.g. "node0".
  std::string name;    ///< Event label, e.g. the task function name.
  std::string category;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// One flow arrow between two track events (Chrome trace "s"/"f" pairs) —
/// used to draw producer -> consumer dependency edges between taskrt tasks
/// in the merged Perfetto view. Timestamps must fall inside the source and
/// destination slices so the viewer can bind the arrow endpoints.
struct FlowEvent {
  std::uint64_t id = 0;   ///< Unique flow id (arrow identity).
  std::string name;       ///< Arrow label, e.g. "dep".
  std::string category;
  std::string from_track; ///< Track label of the producing event.
  std::int64_t from_ns = 0;
  std::string to_track;   ///< Track label of the consuming event.
  std::int64_t to_ns = 0;
};

/// Chrome trace-event JSON. Spans become "X" events under pid 1 (one tid per
/// recording thread); `extra_tracks` events land under pid 2 with one tid per
/// distinct track label, and `flows` are emitted as "s"/"f" pairs bound to
/// those tracks. Thread/process names are emitted as "M" metadata events so
/// Perfetto shows readable lanes.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<TrackEvent>& extra_tracks = {},
                              const std::vector<FlowEvent>& flows = {});

/// Sanitized Prometheus metric name: invalid characters become '_' and the
/// result is prefixed with "climate_" (which also keeps names that start
/// with a digit valid). Exposed for exporter tests.
std::string prom_metric_name(std::string_view name);

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string prom_escape_label(std::string_view value);

/// Prometheus text exposition (text/plain; version 0.0.4). Metric names are
/// sanitized through prom_metric_name; every metric gets a # HELP line (the
/// registered help text, or a generic fallback naming the source metric) and
/// a # TYPE line; histograms emit cumulative _bucket{le=...}, _sum, _count.
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Structured JSON dump of a metrics snapshot (benches attach this next to
/// their timing tables).
common::Json metrics_json(const MetricsSnapshot& snapshot);

/// Writes `content` to `path`; returns false (and logs) on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace climate::obs
