// Exporters for the observability layer:
//  - Chrome trace-event JSON (loads in Perfetto / chrome://tracing): spans
//    as complete ("X") events grouped by thread, plus optional external
//    tracks (e.g. the taskrt::Trace task records, one track per node);
//  - Prometheus text exposition of a metrics snapshot;
//  - a plain JSON snapshot dump for benches and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace climate::obs {

/// One externally produced complete event, merged into the Chrome trace as
/// its own track group. Used to overlay the taskrt runtime trace (a track
/// per node) onto the span timeline; timestamps must be on the obs::now_ns()
/// clock.
struct TrackEvent {
  std::string track;   ///< Track label, e.g. "node0".
  std::string name;    ///< Event label, e.g. the task function name.
  std::string category;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Chrome trace-event JSON. Spans become "X" events under pid 1 (one tid per
/// recording thread); `extra_tracks` events land under pid 2 with one tid per
/// distinct track label. Thread/process names are emitted as "M" metadata
/// events so Perfetto shows readable lanes.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<TrackEvent>& extra_tracks = {});

/// Prometheus text exposition (text/plain; version 0.0.4). Metric names are
/// sanitized ('.' and other invalid characters become '_') and prefixed with
/// "climate_"; histograms emit cumulative _bucket{le=...}, _sum and _count.
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Structured JSON dump of a metrics snapshot (benches attach this next to
/// their timing tables).
common::Json metrics_json(const MetricsSnapshot& snapshot);

/// Writes `content` to `path`; returns false (and logs) on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace climate::obs
