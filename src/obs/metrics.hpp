// Cross-layer metrics registry (ISSUE 1 tentpole): named counters, gauges
// and fixed-bucket histograms shared by every module of the workflow stack.
//
// Design notes
// ------------
// Hot-path increments must cost nanoseconds: each counter/histogram is
// striped over kMetricShards cache-line-aligned shards indexed by a
// per-thread id, so concurrent writers on different threads almost never
// touch the same cache line and every update is one relaxed atomic op.
// Reads (snapshot/export) merge the shards; they are rare and may race
// benignly with writers — per-metric totals are exact once writers quiesce.
//
// Metric handles returned by the registry are stable for the registry's
// lifetime, so call sites can look a metric up once (the OBS_* macros in
// obs.hpp cache the handle in a function-local static) and pay only the
// atomic update afterwards. Compile the whole layer out with
// -DCLIMATE_OBS=OFF (see obs.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace climate::obs {

/// Number of stripes per metric. A small power of two: enough to keep the
/// worker pools of this codebase (taskrt nodes + datacube I/O servers) off
/// each other's cache lines without bloating every metric.
inline constexpr std::size_t kMetricShards = 16;

/// Small sequential id of the calling thread (0, 1, 2, ... in first-use
/// order). Also used by the span collector and exporters as the track id.
std::uint32_t thread_id();

/// Shard stripe the calling thread writes to (thread_id() % kMetricShards).
inline std::size_t shard_index() { return thread_id() % kMetricShards; }

/// Global runtime kill-switch checked by the OBS_* macros and Span: lets one
/// binary measure instrumented vs. uninstrumented runs (bench_obs_overhead).
/// Defaults to enabled.
void set_enabled(bool enabled);
bool enabled();

/// Nanoseconds since the process-wide observability epoch (steady clock).
/// Every producer of timestamps — spans, the taskrt runtime trace — uses
/// this clock so one run merges into a single aligned timeline.
std::int64_t now_ns();

/// Wall-clock nanoseconds since the Unix epoch at obs epoch time; lets logs
/// (wall clock) be joined with spans (monotonic) by time.
std::int64_t wall_ns_at_epoch();

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t delta) {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value, with lock-free add for up/down
/// tracking (queue depths, resident bytes).
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged view of one histogram (counts[i] observations <= bounds[i];
/// counts.back() is the +Inf overflow bucket).
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< Ascending upper bounds (exclusive of +Inf).
  std::vector<std::uint64_t> counts; ///< bounds.size() + 1 entries.
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram; bucket search is a short linear scan (bounds are
/// few), the count update is one relaxed atomic add on the thread's stripe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) {
    std::size_t b = 0;
    while (b < bounds_.size() && value > bounds_[b]) ++b;
    Shard& shard = shards_[shard_index()];
    shard.counts[b].fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS loop: contention is bounded by the sharding.
    double expected = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(expected, expected + value,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Convenience for nanosecond latencies.
  void observe_ns(std::int64_t ns) { observe(static_cast<double>(ns)); }

  HistogramSnapshot snapshot() const;
  void reset();
  const std::vector<double>& bounds() const { return bounds_; }

  /// Default latency buckets: exponential powers of two from 1 us to ~34 s.
  static std::vector<double> default_latency_bounds_ns();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, std::string> help;  ///< Registered # HELP descriptions.
};

/// Name -> metric map. Handles are created on first use and stay valid for
/// the registry's lifetime; reset() zeroes values in place so cached handles
/// survive (benches reset between configurations).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every OBS_* macro records into.
  static MetricsRegistry& global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// `bounds` applies only on first creation; empty uses the default
  /// latency buckets.
  Histogram* histogram(std::string_view name, std::vector<double> bounds = {});

  /// Registers the Prometheus # HELP description for `name` (any kind).
  /// Survives reset(); last writer wins.
  void set_help(std::string_view name, std::string_view help);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric, keeping handles valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace climate::obs
