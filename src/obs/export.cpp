#include "obs/export.hpp"

#include <cctype>
#include <fstream>
#include <map>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace climate::obs {
namespace {

constexpr const char* kLogTag = "obs";

common::Json meta_event(int pid, int tid, const char* kind, const std::string& label) {
  common::Json::Object args;
  args["name"] = label;
  common::Json::Object event;
  event["ph"] = "M";
  event["pid"] = pid;
  if (tid >= 0) event["tid"] = tid;
  event["name"] = kind;
  event["args"] = common::Json(std::move(args));
  return common::Json(std::move(event));
}

common::Json complete_event(int pid, int tid, const std::string& name, const std::string& cat,
                            std::int64_t start_ns, std::int64_t end_ns, common::Json args) {
  common::Json::Object event;
  event["ph"] = "X";
  event["pid"] = pid;
  event["tid"] = tid;
  event["name"] = name;
  event["cat"] = cat.empty() ? "default" : cat;
  event["ts"] = static_cast<double>(start_ns) / 1e3;   // microseconds
  event["dur"] = static_cast<double>(end_ns - start_ns) / 1e3;
  if (!args.is_null()) event["args"] = std::move(args);
  return common::Json(std::move(event));
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<TrackEvent>& extra_tracks,
                              const std::vector<FlowEvent>& flows) {
  common::Json::Array events;
  events.push_back(meta_event(1, -1, "process_name", "spans"));

  std::map<std::uint32_t, bool> named_threads;
  for (const SpanRecord& span : spans) {
    if (named_threads.emplace(span.tid, true).second) {
      events.push_back(
          meta_event(1, static_cast<int>(span.tid), "thread_name",
                     "thread-" + std::to_string(span.tid)));
    }
    common::Json::Object args;
    args["id"] = static_cast<std::int64_t>(span.id);
    if (span.parent != 0) args["parent"] = static_cast<std::int64_t>(span.parent);
    events.push_back(complete_event(1, static_cast<int>(span.tid), span.name, span.category,
                                    span.start_ns, span.end_ns,
                                    common::Json(std::move(args))));
  }

  std::map<std::string, int> track_tids;
  auto track_tid = [&](const std::string& track) {
    auto [it, inserted] = track_tids.emplace(track, static_cast<int>(track_tids.size()));
    if (inserted) events.push_back(meta_event(2, it->second, "thread_name", track));
    return it->second;
  };
  if (!extra_tracks.empty() || !flows.empty()) {
    events.push_back(meta_event(2, -1, "process_name", "taskrt nodes"));
  }
  for (const TrackEvent& event : extra_tracks) {
    events.push_back(complete_event(2, track_tid(event.track), event.name, event.category,
                                    event.start_ns, event.end_ns, common::Json()));
  }
  for (const FlowEvent& flow : flows) {
    // "s" (start) inside the producing slice, "f" with bp:"e" (bind to
    // enclosing slice) inside the consuming one; matched by cat+id.
    common::Json::Object start;
    start["ph"] = "s";
    start["pid"] = 2;
    start["tid"] = track_tid(flow.from_track);
    start["name"] = flow.name;
    start["cat"] = flow.category.empty() ? "flow" : flow.category;
    start["id"] = static_cast<std::int64_t>(flow.id);
    start["ts"] = static_cast<double>(flow.from_ns) / 1e3;
    events.push_back(common::Json(std::move(start)));
    common::Json::Object finish;
    finish["ph"] = "f";
    finish["bp"] = "e";
    finish["pid"] = 2;
    finish["tid"] = track_tid(flow.to_track);
    finish["name"] = flow.name;
    finish["cat"] = flow.category.empty() ? "flow" : flow.category;
    finish["id"] = static_cast<std::int64_t>(flow.id);
    finish["ts"] = static_cast<double>(flow.to_ns) / 1e3;
    events.push_back(common::Json(std::move(finish)));
  }

  common::Json::Object doc;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = common::Json(std::move(events));
  return common::Json(std::move(doc)).dump();
}

namespace {

std::string format_double(double value) {
  // Prometheus accepts any float literal; trim trailing zeros for legibility.
  std::string s = common::format("%.6f", value);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

/// HELP text is a full line: escape backslash and newline per the text
/// exposition format.
std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Emits the # HELP and # TYPE preamble for one metric.
void emit_preamble(std::string& out, const MetricsSnapshot& snapshot, const std::string& name,
                   const std::string& metric, const char* type) {
  auto it = snapshot.help.find(name);
  const std::string help =
      it != snapshot.help.end() && !it->second.empty() ? it->second : "climate metric '" + name + "'";
  out += "# HELP " + metric + " " + escape_help(help) + "\n";
  out += "# TYPE " + metric + " " + type + "\n";
}

}  // namespace

std::string prom_metric_name(std::string_view name) {
  // The "climate_" prefix keeps the name valid even when the source name
  // starts with a digit ([a-zA-Z_:] required for the first character).
  std::string out = "climate_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prom_metric_name(name);
    emit_preamble(out, snapshot, name, metric, "counter");
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prom_metric_name(name);
    emit_preamble(out, snapshot, name, metric, "gauge");
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = prom_metric_name(name);
    emit_preamble(out, snapshot, name, metric, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += hist.counts[b];
      out += metric + "_bucket{le=\"" + prom_escape_label(format_double(hist.bounds[b])) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += metric + "_sum " + format_double(hist.sum) + "\n";
    out += metric + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

common::Json metrics_json(const MetricsSnapshot& snapshot) {
  common::Json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = static_cast<std::int64_t>(value);
  }
  common::Json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  common::Json::Object histograms;
  for (const auto& [name, hist] : snapshot.histograms) {
    common::Json::Array bounds;
    for (double b : hist.bounds) bounds.push_back(b);
    common::Json::Array counts;
    for (std::uint64_t c : hist.counts) counts.push_back(static_cast<std::int64_t>(c));
    common::Json::Object h;
    h["bounds"] = common::Json(std::move(bounds));
    h["counts"] = common::Json(std::move(counts));
    h["count"] = static_cast<std::int64_t>(hist.count);
    h["sum"] = hist.sum;
    histograms[name] = common::Json(std::move(h));
  }
  common::Json::Object doc;
  doc["counters"] = common::Json(std::move(counters));
  doc["gauges"] = common::Json(std::move(gauges));
  doc["histograms"] = common::Json(std::move(histograms));
  return common::Json(std::move(doc));
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    LOG_WARN(kLogTag) << "cannot write " << path;
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    LOG_WARN(kLogTag) << "short write to " << path;
    return false;
  }
  return true;
}

}  // namespace climate::obs
