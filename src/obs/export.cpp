#include "obs/export.hpp"

#include <cctype>
#include <fstream>
#include <map>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace climate::obs {
namespace {

constexpr const char* kLogTag = "obs";

common::Json meta_event(int pid, int tid, const char* kind, const std::string& label) {
  common::Json::Object args;
  args["name"] = label;
  common::Json::Object event;
  event["ph"] = "M";
  event["pid"] = pid;
  if (tid >= 0) event["tid"] = tid;
  event["name"] = kind;
  event["args"] = common::Json(std::move(args));
  return common::Json(std::move(event));
}

common::Json complete_event(int pid, int tid, const std::string& name, const std::string& cat,
                            std::int64_t start_ns, std::int64_t end_ns, common::Json args) {
  common::Json::Object event;
  event["ph"] = "X";
  event["pid"] = pid;
  event["tid"] = tid;
  event["name"] = name;
  event["cat"] = cat.empty() ? "default" : cat;
  event["ts"] = static_cast<double>(start_ns) / 1e3;   // microseconds
  event["dur"] = static_cast<double>(end_ns - start_ns) / 1e3;
  if (!args.is_null()) event["args"] = std::move(args);
  return common::Json(std::move(event));
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              const std::vector<TrackEvent>& extra_tracks) {
  common::Json::Array events;
  events.push_back(meta_event(1, -1, "process_name", "spans"));

  std::map<std::uint32_t, bool> named_threads;
  for (const SpanRecord& span : spans) {
    if (named_threads.emplace(span.tid, true).second) {
      events.push_back(
          meta_event(1, static_cast<int>(span.tid), "thread_name",
                     "thread-" + std::to_string(span.tid)));
    }
    common::Json::Object args;
    args["id"] = static_cast<std::int64_t>(span.id);
    if (span.parent != 0) args["parent"] = static_cast<std::int64_t>(span.parent);
    events.push_back(complete_event(1, static_cast<int>(span.tid), span.name, span.category,
                                    span.start_ns, span.end_ns,
                                    common::Json(std::move(args))));
  }

  if (!extra_tracks.empty()) {
    events.push_back(meta_event(2, -1, "process_name", "taskrt nodes"));
    std::map<std::string, int> track_tids;
    for (const TrackEvent& event : extra_tracks) {
      auto [it, inserted] = track_tids.emplace(event.track, static_cast<int>(track_tids.size()));
      if (inserted) events.push_back(meta_event(2, it->second, "thread_name", event.track));
      events.push_back(complete_event(2, it->second, event.name, event.category, event.start_ns,
                                      event.end_ns, common::Json()));
    }
  }

  common::Json::Object doc;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = common::Json(std::move(events));
  return common::Json(std::move(doc)).dump();
}

namespace {

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "climate_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string format_double(double value) {
  // Prometheus accepts any float literal; trim trailing zeros for legibility.
  std::string s = common::format("%.6f", value);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      cumulative += hist.counts[b];
      out += metric + "_bucket{le=\"" + format_double(hist.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += metric + "_sum " + format_double(hist.sum) + "\n";
    out += metric + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

common::Json metrics_json(const MetricsSnapshot& snapshot) {
  common::Json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = static_cast<std::int64_t>(value);
  }
  common::Json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  common::Json::Object histograms;
  for (const auto& [name, hist] : snapshot.histograms) {
    common::Json::Array bounds;
    for (double b : hist.bounds) bounds.push_back(b);
    common::Json::Array counts;
    for (std::uint64_t c : hist.counts) counts.push_back(static_cast<std::int64_t>(c));
    common::Json::Object h;
    h["bounds"] = common::Json(std::move(bounds));
    h["counts"] = common::Json(std::move(counts));
    h["count"] = static_cast<std::int64_t>(hist.count);
    h["sum"] = hist.sum;
    histograms[name] = common::Json(std::move(h));
  }
  common::Json::Object doc;
  doc["counters"] = common::Json(std::move(counters));
  doc["gauges"] = common::Json(std::move(gauges));
  doc["histograms"] = common::Json(std::move(histograms));
  return common::Json(std::move(doc));
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    LOG_WARN(kLogTag) << "cannot write " << path;
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    LOG_WARN(kLogTag) << "short write to " << path;
    return false;
  }
  return true;
}

}  // namespace climate::obs
