#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace climate::common {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += separator;
    out += items[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  return format("%.1f %s", bytes, kUnits[unit]);
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace climate::common
