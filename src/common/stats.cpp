#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace climate::common {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile of empty vector");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  RunningStats sa, sb;
  for (double v : a) sa.add(v);
  for (double v : b) sb.add(v);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace climate::common
