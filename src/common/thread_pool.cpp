#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace climate::common {
namespace {
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t size) {
  if (size == 0) size = 1;
  workers_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = static_cast<int>(index);
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::current_worker() { return t_worker_index; }

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t shards = std::min(count, size());
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futures.push_back(submit([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace climate::common
