// Seeded, deterministic fault injection (the chaos layer).
//
// A FaultPlan is a seed plus a list of rules describing which events to
// inject where: task-body exceptions, node crashes and slowdowns in the
// task runtime, fragment-operator errors and latency spikes in the datacube
// server, transfer failures in the Data Logistics Service and deployment
// step failures in the HPCWaaS orchestrator. Each layer asks its injector
// at well-defined decision points ("should fault X fire for target T at
// index K?").
//
// Determinism contract: a decision is a pure function of
// (plan seed, rule index, target string, caller-supplied key) — never of
// wall-clock time or a shared sequential RNG — so thread interleaving
// cannot change the set of injected faults. Two runs with the same seed and
// plan produce the same injection log (compare Injector::event_log(), which
// is canonically sorted). Rules with `max_injections` additionally cap the
// total count under a mutex; on layers that decide concurrently the capped
// *subset* may vary between runs, so deterministic plans should combine
// `max_injections` only with serial decision streams (DLS / orchestrator
// steps) or with `at` matches.
//
// This header lives in `common` and therefore cannot use the obs layer
// (scripts/check_invariants.py layering); call sites in taskrt/datacube/
// hpcwaas emit the `fault.injected.<layer>.<kind>` counters when an
// injection fires.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"

namespace climate::common::fault {

/// What to inject. Layer ownership: kTaskError/kNodeCrash/kNodeSlowdown are
/// consumed by taskrt, kFragmentError/kFragmentDelay by the datacube server,
/// kDlsError by the Data Logistics Service, kStepError by the orchestrator.
enum class Kind {
  kTaskError,      ///< Task body throws before running (taskrt).
  kNodeCrash,      ///< Node stops draining; in-flight work + local data lost.
  kNodeSlowdown,   ///< Extra latency before a task body (taskrt).
  kFragmentError,  ///< Datacube operator rejected with UNAVAILABLE.
  kFragmentDelay,  ///< Latency spike on a fragment access (datacube).
  kDlsError,       ///< DLS data-movement step fails with UNAVAILABLE.
  kStepError,      ///< HPCWaaS deployment step fails with UNAVAILABLE.
};

const char* kind_name(Kind kind);
Result<Kind> parse_kind(const std::string& name);

/// One injection rule. `target` selects victims by name ("" matches
/// everything, a trailing '*' matches by prefix). Probabilistic rules use
/// `rate`; scheduled rules use `at` (fire exactly when the decision key
/// equals `at`). `max_injections` caps the rule's total firings (-1 =
/// unbounded); `delay_ms` parameterizes the slowdown/latency kinds.
struct Rule {
  Kind kind = Kind::kTaskError;
  std::string target;
  double rate = 0.0;
  std::int64_t at = -1;
  int max_injections = -1;
  double delay_ms = 0.0;
};

/// A seeded fault schedule, parseable from JSON:
///
///   {"seed": 42, "rules": [
///     {"kind": "task_error", "rate": 0.05},
///     {"kind": "node_crash", "target": "node1", "at": 3},
///     {"kind": "dls_error", "rate": 1.0, "max": 2},
///     {"kind": "fragment_delay", "rate": 0.1, "delay_ms": 2}]}
struct Plan {
  std::uint64_t seed = 0;
  std::vector<Rule> rules;

  bool empty() const { return rules.empty(); }
  static Result<Plan> from_json(const Json& doc);
  static Result<Plan> parse(const std::string& text);
  Json to_json() const;
};

/// One recorded injection.
struct Event {
  Kind kind = Kind::kTaskError;
  std::size_t rule = 0;     ///< Index into Plan::rules.
  std::string target;       ///< Victim name at the decision point.
  std::int64_t key = 0;     ///< Caller-supplied decision key.
  double delay_ms = 0.0;    ///< For slowdown/latency kinds.

  /// Canonical one-line rendering (replay comparisons sort these).
  std::string to_string() const;
};

/// Parameters of a fired injection handed back to the layer.
struct Action {
  std::size_t rule = 0;
  double delay_ms = 0.0;
};

/// Thread-safe decision engine over one Plan. Decisions are deterministic
/// (see file comment); the event log records every firing.
class Injector {
 public:
  explicit Injector(Plan plan);

  const Plan& plan() const { return plan_; }

  /// Decides whether a fault of `kind` fires for `target` at decision index
  /// `key`. Returns the action of the first matching rule that fires, and
  /// records it in the event log.
  std::optional<Action> fire(Kind kind, std::string_view target, std::int64_t key);

  /// Every injection so far, in canonical (kind, rule, target, key) order —
  /// independent of the thread interleaving that produced it.
  std::vector<Event> events() const;

  /// events() rendered to_string(), for replay-determinism comparisons.
  std::vector<std::string> event_log() const;

  std::uint64_t injected_count() const;

  /// Builds an injector from the CLIMATE_FAULTS environment variable: inline
  /// JSON, or "@/path/to/plan.json". Returns nullptr when unset/empty;
  /// invalid plans are reported via the returned status message of parse()
  /// in the log and also yield nullptr.
  static std::shared_ptr<Injector> from_env(const char* variable = "CLIMATE_FAULTS");

 private:
  Plan plan_;
  mutable std::mutex mutex_;
  std::vector<int> counts_;    // firings per rule (max_injections caps)
  std::vector<Event> events_;  // append-only injection log
};

}  // namespace climate::common::fault
