#include "common/grid.hpp"

#include <algorithm>
#include <cmath>

namespace climate::common {

LatLonGrid::LatLonGrid(std::size_t nlat, std::size_t nlon) : nlat_(nlat), nlon_(nlon) {
  lats_.resize(nlat);
  lons_.resize(nlon);
  weights_.resize(nlat);
  const double dlat = 180.0 / static_cast<double>(nlat);
  const double dlon = 360.0 / static_cast<double>(nlon);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < nlat; ++i) {
    lats_[i] = -90.0 + dlat * (static_cast<double>(i) + 0.5);
    weights_[i] = std::cos(deg_to_rad(lats_[i]));
    weight_sum += weights_[i];
  }
  for (std::size_t j = 0; j < nlon; ++j) {
    lons_[j] = dlon * static_cast<double>(j);
  }
  const double norm = weight_sum * static_cast<double>(nlon);
  for (auto& w : weights_) w /= norm;
}

std::size_t LatLonGrid::nearest_lat(double lat_deg) const {
  const double row = (lat_deg + 90.0) / dlat() - 0.5;
  const long i = std::lround(row);
  return static_cast<std::size_t>(std::clamp<long>(i, 0, static_cast<long>(nlat_) - 1));
}

std::size_t LatLonGrid::nearest_lon(double lon_deg) const {
  double lon = std::fmod(lon_deg, 360.0);
  if (lon < 0) lon += 360.0;
  const long j = std::lround(lon / dlon());
  return wrap_lon(j);
}

double great_circle_km(double lat1, double lon1, double lat2, double lon2) {
  const double p1 = deg_to_rad(lat1);
  const double p2 = deg_to_rad(lat2);
  const double dp = deg_to_rad(lat2 - lat1);
  const double dl = deg_to_rad(lon2 - lon1);
  const double a = std::sin(dp / 2) * std::sin(dp / 2) +
                   std::cos(p1) * std::cos(p2) * std::sin(dl / 2) * std::sin(dl / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

float Field::min() const {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::min(m, v);
  return m;
}

float Field::max() const {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::max(m, v);
  return m;
}

double Field::mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

float bilinear_sample(const Field& field, double row, double col) {
  const long nlat = static_cast<long>(field.nlat());
  const long nlon = static_cast<long>(field.nlon());
  const double r = std::clamp(row, 0.0, static_cast<double>(nlat - 1));
  long r0 = static_cast<long>(std::floor(r));
  long r1 = std::min(r0 + 1, nlat - 1);
  const double fr = r - static_cast<double>(r0);
  double c = std::fmod(col, static_cast<double>(nlon));
  if (c < 0) c += static_cast<double>(nlon);
  long c0 = static_cast<long>(std::floor(c));
  long c1 = (c0 + 1) % nlon;
  const double fc = c - static_cast<double>(c0);
  const double v00 = field.at(static_cast<std::size_t>(r0), static_cast<std::size_t>(c0));
  const double v01 = field.at(static_cast<std::size_t>(r0), static_cast<std::size_t>(c1));
  const double v10 = field.at(static_cast<std::size_t>(r1), static_cast<std::size_t>(c0));
  const double v11 = field.at(static_cast<std::size_t>(r1), static_cast<std::size_t>(c1));
  const double top = v00 * (1 - fc) + v01 * fc;
  const double bottom = v10 * (1 - fc) + v11 * fc;
  return static_cast<float>(top * (1 - fr) + bottom * fr);
}

Field regrid_bilinear(const Field& src, std::size_t new_nlat, std::size_t new_nlon) {
  Field out(new_nlat, new_nlon);
  const double row_scale = static_cast<double>(src.nlat()) / static_cast<double>(new_nlat);
  const double col_scale = static_cast<double>(src.nlon()) / static_cast<double>(new_nlon);
  for (std::size_t i = 0; i < new_nlat; ++i) {
    const double row = (static_cast<double>(i) + 0.5) * row_scale - 0.5;
    for (std::size_t j = 0; j < new_nlon; ++j) {
      const double col = (static_cast<double>(j) + 0.5) * col_scale - 0.5;
      out.at(i, j) = bilinear_sample(src, row, col);
    }
  }
  return out;
}

}  // namespace climate::common
