// Lightweight leveled logger shared by every module.
//
// Design notes: a single global sink guarded by a mutex is enough for this
// codebase — logging is never on a hot path (the runtime and the datacube
// only log at task/operator granularity). Levels can be raised globally to
// silence output in tests and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace climate::common {

/// Severity of a log record, ordered from most to least verbose.
enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the short uppercase tag for a level ("INFO", "WARN", ...).
std::string_view log_level_name(LogLevel level);

/// Global minimum severity; records below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Output format of the global sink. kHuman (the default) prints
/// "[seconds.millis] T<tid> LEVEL component: message"; kJson prints one JSON
/// object per line ({"ts_ms","tid","level","component","msg"}) so records can
/// be joined with observability spans by wall-clock time.
enum class LogFormat : int { kHuman = 0, kJson = 1 };
void set_log_format(LogFormat format);
LogFormat log_format();

/// Small sequential id of the calling thread (first caller = 0), stable for
/// the thread's lifetime. Exposed for tests.
std::size_t log_thread_id();

/// Correlation hook: returns the id of the innermost open observability span
/// on the calling thread (0 = none). The obs layer installs its provider at
/// start-up (common/ cannot depend on obs/); JSON-format records then carry
/// a "span" field so logs join with Perfetto traces by span id.
using LogSpanProvider = std::uint64_t (*)();
void set_log_span_provider(LogSpanProvider provider);
LogSpanProvider log_span_provider();

/// Emits one record to stderr. Thread-safe. Prefer the LOG_* macros below.
void log_message(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style log record builder; flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  ~LogStream() { log_message(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace climate::common

#define CLIMATE_LOG(level, component)                          \
  if (static_cast<int>(level) < static_cast<int>(::climate::common::log_level())) { \
  } else                                                       \
    ::climate::common::LogStream(level, component)

#define LOG_TRACE(component) CLIMATE_LOG(::climate::common::LogLevel::kTrace, component)
#define LOG_DEBUG(component) CLIMATE_LOG(::climate::common::LogLevel::kDebug, component)
#define LOG_INFO(component) CLIMATE_LOG(::climate::common::LogLevel::kInfo, component)
#define LOG_WARN(component) CLIMATE_LOG(::climate::common::LogLevel::kWarn, component)
#define LOG_ERROR(component) CLIMATE_LOG(::climate::common::LogLevel::kError, component)
