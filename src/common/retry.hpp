// Shared retry discipline for the service layers: exponential backoff with
// decorrelated jitter, a total sleep budget, and a small circuit breaker so
// callers of a dead service fail fast instead of retry-storming it.
//
// Used by the datacube Client (UNAVAILABLE admission rejections / injected
// fragment faults) and the HPCWaaS orchestrator (deployment + DLS steps).
// The jitter stream is seeded (RetryOptions::jitter_seed), so retry timing
// is reproducible for a fixed seed.
#pragma once

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace climate::common {

struct RetryOptions {
  /// Total tries including the first one; 1 disables retrying.
  int max_attempts = 4;
  double base_delay_ms = 0.5;
  double max_delay_ms = 50.0;
  /// Total sleep budget across all backoffs of one call.
  double budget_ms = 250.0;
  /// Seed of the jitter stream (deterministic backoff schedule).
  std::uint64_t jitter_seed = 0;
};

/// Outcome bookkeeping a caller can surface in reports.
struct RetryStats {
  int attempts = 0;
  double slept_ms = 0.0;
  bool exhausted = false;  ///< Gave up while the error was still retryable.
};

/// Backoff schedule: "decorrelated jitter" — each delay is uniform in
/// [base, 3 * previous], capped by max_delay_ms and the remaining budget.
class Backoff {
 public:
  explicit Backoff(const RetryOptions& options)
      : options_(options),
        rng_(options.jitter_seed ^ 0x5bf03635d0d8b5bdull),
        previous_ms_(options.base_delay_ms) {}

  /// Delay before the next retry, or nullopt once attempts or the sleep
  /// budget are exhausted.
  std::optional<double> next_delay_ms() {
    if (attempts_ + 1 >= options_.max_attempts) return std::nullopt;
    ++attempts_;
    double delay = rng_.uniform(options_.base_delay_ms,
                                std::max(options_.base_delay_ms, previous_ms_ * 3.0));
    delay = std::min(delay, options_.max_delay_ms);
    if (slept_ms_ + delay > options_.budget_ms) return std::nullopt;
    slept_ms_ += delay;
    previous_ms_ = delay;
    return delay;
  }

  double slept_ms() const { return slept_ms_; }

 private:
  RetryOptions options_;
  Rng rng_;
  double previous_ms_;
  int attempts_ = 0;
  double slept_ms_ = 0.0;
};

/// The default retryability predicate: transient service conditions.
inline bool transient_status(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

inline const Status& status_of(const Status& status) { return status; }
template <typename T>
const Status& status_of(const Result<T>& result) {
  return result.status();
}

/// Runs `fn` (returning Status or Result<T>) with retries on transient
/// failures. Returns the last outcome; `stats` (optional) records attempts
/// and sleep time.
template <typename Fn, typename Retryable>
auto retry_call(Fn&& fn, const RetryOptions& options, Retryable&& retryable,
                RetryStats* stats = nullptr) -> decltype(fn()) {
  Backoff backoff(options);
  int attempts = 0;
  for (;;) {
    auto outcome = fn();
    ++attempts;
    const Status& status = status_of(outcome);
    if (status.ok() || !retryable(status)) {
      if (stats != nullptr) {
        stats->attempts = attempts;
        stats->slept_ms = backoff.slept_ms();
        stats->exhausted = false;
      }
      return outcome;
    }
    const std::optional<double> delay = backoff.next_delay_ms();
    if (!delay.has_value()) {
      if (stats != nullptr) {
        stats->attempts = attempts;
        stats->slept_ms = backoff.slept_ms();
        stats->exhausted = true;
      }
      return outcome;
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<std::int64_t>(*delay * 1e6)));
  }
}

template <typename Fn>
auto retry_call(Fn&& fn, const RetryOptions& options, RetryStats* stats = nullptr)
    -> decltype(fn()) {
  return retry_call(std::forward<Fn>(fn), options, transient_status, stats);
}

/// A minimal circuit breaker: after `failure_threshold` consecutive
/// failures the circuit opens and calls are rejected without touching the
/// service; after `open_ms` it half-opens and lets `half_open_probes`
/// probes through — one success closes it, one failure re-opens it.
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 5;
    double open_ms = 100.0;
    int half_open_probes = 1;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker() : options_(Options{}) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Whether a call may proceed now (false = fail fast with UNAVAILABLE).
  bool allow() {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen: {
        const auto elapsed = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - opened_at_);
        if (elapsed.count() < options_.open_ms) return false;
        state_ = State::kHalfOpen;
        probes_ = 0;
        [[fallthrough]];
      }
      case State::kHalfOpen:
        if (probes_ >= options_.half_open_probes) return false;
        ++probes_;
        return true;
    }
    return true;
  }

  void record(const Status& status) { status.ok() ? record_success() : record_failure(); }

  void record_success() {
    std::lock_guard<std::mutex> lock(mutex_);
    failures_ = 0;
    state_ = State::kClosed;
  }

  void record_failure() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++failures_;
    if (state_ == State::kHalfOpen || failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      opened_at_ = std::chrono::steady_clock::now();
    }
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }

 private:
  Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  int failures_ = 0;  // consecutive
  int probes_ = 0;    // in the current half-open window
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace climate::common
