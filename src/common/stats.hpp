// Descriptive statistics helpers used by benches and validation code.
#pragma once

#include <cstddef>
#include <vector>

namespace climate::common {

/// Streaming accumulator for count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-quantile (0 <= q <= 1) by linear interpolation; copies and sorts.
double quantile(std::vector<double> values, double q);

/// Pearson correlation of two equally-sized series; 0 when degenerate.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Root-mean-square error between two equally-sized series.
double rmse(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace climate::common
