// Minimal error-handling vocabulary: Status (code + message) and Result<T>
// (Status or value). C++20 has no std::expected, and exceptions across the
// simulated client/server boundaries of the datacube and HPCWaaS layers would
// hide failure paths the paper's stack surfaces explicitly (task failures,
// deployment errors), so those APIs return Result.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace climate::common {

/// Canonical error categories, loosely following the classic RPC set.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kCancelled,
  kDataLoss,
};

/// Returns a human-readable name for a code ("NOT_FOUND", ...).
constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// A success/error outcome with an optional message.
class Status {
 public:
  /// Success.
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status Cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }
  static Status DataLoss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CODE: message" rendering for logs and error strings.
  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown by Result<T>::value() when the result holds an error.
class BadResultAccess : public std::runtime_error {
 public:
  explicit BadResultAccess(const Status& status)
      : std::runtime_error("Result access on error: " + status.to_string()) {}
};

/// Either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  /// Returns the value; throws BadResultAccess if this holds an error.
  T& value() & {
    if (!ok()) throw BadResultAccess(std::get<Status>(payload_));
    return std::get<T>(payload_);
  }
  const T& value() const& {
    if (!ok()) throw BadResultAccess(std::get<Status>(payload_));
    return std::get<T>(payload_);
  }
  T&& value() && {
    if (!ok()) throw BadResultAccess(std::get<Status>(payload_));
    return std::get<T>(std::move(payload_));
  }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace climate::common

/// Propagates a non-OK Status from an expression returning Status.
#define CLIMATE_RETURN_IF_ERROR(expr)                      \
  do {                                                     \
    ::climate::common::Status _st = (expr);                \
    if (!_st.ok()) return _st;                             \
  } while (0)
