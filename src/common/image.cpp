#include "common/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace climate::common {
namespace {

float normalized(float v, float lo, float hi) {
  if (hi <= lo) return 0.0f;
  return std::clamp((v - lo) / (hi - lo), 0.0f, 1.0f);
}

}  // namespace

Status write_pgm(const std::string& path, const Field& field, float lo, float hi) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("cannot open " + path);
  out << "P5\n" << field.nlon() << " " << field.nlat() << "\n255\n";
  for (std::size_t i = field.nlat(); i-- > 0;) {
    for (std::size_t j = 0; j < field.nlon(); ++j) {
      const auto value = static_cast<unsigned char>(255.0f * normalized(field.at(i, j), lo, hi));
      out.put(static_cast<char>(value));
    }
  }
  if (!out) return Status::DataLoss("short write to " + path);
  return Status::Ok();
}

Status write_ppm_diverging(const std::string& path, const Field& field, float lo, float hi) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("cannot open " + path);
  out << "P6\n" << field.nlon() << " " << field.nlat() << "\n255\n";
  for (std::size_t i = field.nlat(); i-- > 0;) {
    for (std::size_t j = 0; j < field.nlon(); ++j) {
      const float t = normalized(field.at(i, j), lo, hi);  // 0 blue .. 1 red
      unsigned char r, g, b;
      if (t < 0.5f) {
        const float u = t * 2.0f;  // blue -> white
        r = static_cast<unsigned char>(255.0f * u);
        g = static_cast<unsigned char>(255.0f * u);
        b = 255;
      } else {
        const float u = (t - 0.5f) * 2.0f;  // white -> red
        r = 255;
        g = static_cast<unsigned char>(255.0f * (1.0f - u));
        b = static_cast<unsigned char>(255.0f * (1.0f - u));
      }
      out.put(static_cast<char>(r)).put(static_cast<char>(g)).put(static_cast<char>(b));
    }
  }
  if (!out) return Status::DataLoss("short write to " + path);
  return Status::Ok();
}

std::string ascii_map(const Field& field, std::size_t cols, float lo, float hi) {
  static const char kRamp[] = " .:-=+*#%@";
  if (lo == 0.0f && hi == 0.0f) {
    lo = field.min();
    hi = field.max();
  }
  cols = std::min(cols, field.nlon());
  if (cols == 0) return "";
  const std::size_t rows = std::max<std::size_t>(1, cols * field.nlat() / (2 * field.nlon()));
  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t r = 0; r < rows; ++r) {
    // North (max latitude row) at the top of the rendering.
    const double row = static_cast<double>(rows - 1 - r) / static_cast<double>(rows) *
                       static_cast<double>(field.nlat() - 1);
    for (std::size_t c = 0; c < cols; ++c) {
      const double col =
          static_cast<double>(c) / static_cast<double>(cols) * static_cast<double>(field.nlon() - 1);
      const float v = bilinear_sample(field, row, col);
      const auto idx = static_cast<std::size_t>(normalized(v, lo, hi) * (sizeof(kRamp) - 2));
      out.push_back(kRamp[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace climate::common
