// Cache-line-striped atomic counters for write-heavy shared statistics.
//
// A single std::atomic counter bounces its cache line between every core
// that updates it; the datacube server's per-operator stats are exactly that
// pattern once many sessions run concurrently. StripedCounter spreads the
// increments over several padded stripes indexed by a per-thread slot, so
// concurrent writers (mostly) touch distinct cache lines. Reads sum the
// stripes: each field is monotone and exact once writers have quiesced, and
// a concurrent read never observes a torn value — it may only lag
// increments that raced with the sum.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>

namespace climate::common {

/// Number of stripes; a power of two so the slot hash is a mask.
inline constexpr std::size_t kCounterStripes = 8;

/// Fixed destructive-interference stride. A constant (rather than
/// std::hardware_destructive_interference_size) so layout does not vary
/// with compiler tuning flags; 64 bytes covers x86-64 and most AArch64.
inline constexpr std::size_t kCacheLineSize = 64;

/// Stable small slot for the calling thread, used to pick a stripe.
inline std::size_t thread_stripe_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// A monotone uint64 counter striped across cache lines.
class StripedCounter {
 public:
  StripedCounter() = default;
  StripedCounter(const StripedCounter&) = delete;
  StripedCounter& operator=(const StripedCounter&) = delete;

  void add(std::uint64_t delta) {
    stripes_[thread_stripe_slot() & (kCounterStripes - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Sum over stripes: exact at quiescence, never torn, monotone between
  /// calls from the same reader.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const Stripe& stripe : stripes_) sum += stripe.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(kCacheLineSize) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  Stripe stripes_[kCounterStripes];
};

}  // namespace climate::common
