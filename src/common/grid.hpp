// Global regular latitude/longitude grid and geodesy helpers.
//
// All gridded fields in the repository (ESM output, datacube fragments,
// extreme-event indices, ML patches) live on a LatLonGrid. The paper's model
// grid is 768x1152 (~0.25 deg); the scaled default used in tests/benches is
// 96x144 with the same 2:3 aspect ratio.
#pragma once

#include <cstddef>
#include <vector>

namespace climate::common {

/// Mean Earth radius [km], used for great-circle distances.
inline constexpr double kEarthRadiusKm = 6371.0;
inline constexpr double kPi = 3.14159265358979323846;

inline double deg_to_rad(double deg) { return deg * kPi / 180.0; }
inline double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// A regular global grid: nlat cell-centered latitudes from ~-90 to ~+90 and
/// nlon longitudes from 0 to 360 (periodic in longitude).
class LatLonGrid {
 public:
  LatLonGrid() = default;
  /// Builds an nlat x nlon cell-centered global grid.
  LatLonGrid(std::size_t nlat, std::size_t nlon);

  std::size_t nlat() const { return nlat_; }
  std::size_t nlon() const { return nlon_; }
  std::size_t size() const { return nlat_ * nlon_; }

  /// Latitude of row i (cell center), degrees north.
  double lat(std::size_t i) const { return lats_[i]; }
  /// Longitude of column j (cell center), degrees east in [0, 360).
  double lon(std::size_t j) const { return lons_[j]; }
  const std::vector<double>& lats() const { return lats_; }
  const std::vector<double>& lons() const { return lons_; }

  /// Grid spacing, degrees.
  double dlat() const { return 180.0 / static_cast<double>(nlat_); }
  double dlon() const { return 360.0 / static_cast<double>(nlon_); }

  /// Flat index for (row, col).
  std::size_t index(std::size_t i, std::size_t j) const { return i * nlon_ + j; }

  /// Column index wrapped periodically in longitude.
  std::size_t wrap_lon(long j) const {
    const long n = static_cast<long>(nlon_);
    long w = j % n;
    if (w < 0) w += n;
    return static_cast<std::size_t>(w);
  }

  /// Nearest grid row for a latitude (clamped to the valid range).
  std::size_t nearest_lat(double lat_deg) const;
  /// Nearest grid column for a longitude (wrapped into [0,360)).
  std::size_t nearest_lon(double lon_deg) const;

  /// cos(latitude) area weight of row i (normalized so weights sum to 1 over
  /// the whole grid).
  double area_weight(std::size_t i) const { return weights_[i]; }

  bool operator==(const LatLonGrid& other) const {
    return nlat_ == other.nlat_ && nlon_ == other.nlon_;
  }

 private:
  std::size_t nlat_ = 0;
  std::size_t nlon_ = 0;
  std::vector<double> lats_;
  std::vector<double> lons_;
  std::vector<double> weights_;
};

/// Great-circle distance between two points, km (haversine).
double great_circle_km(double lat1, double lon1, double lat2, double lon2);

/// A dense 2D field on a LatLonGrid, stored row-major (lat, lon).
class Field {
 public:
  Field() = default;
  explicit Field(const LatLonGrid& grid, float fill = 0.0f)
      : nlat_(grid.nlat()), nlon_(grid.nlon()), data_(grid.size(), fill) {}
  Field(std::size_t nlat, std::size_t nlon, float fill = 0.0f)
      : nlat_(nlat), nlon_(nlon), data_(nlat * nlon, fill) {}

  std::size_t nlat() const { return nlat_; }
  std::size_t nlon() const { return nlon_; }
  std::size_t size() const { return data_.size(); }

  float& at(std::size_t i, std::size_t j) { return data_[i * nlon_ + j]; }
  float at(std::size_t i, std::size_t j) const { return data_[i * nlon_ + j]; }
  float& operator[](std::size_t flat) { return data_[flat]; }
  float operator[](std::size_t flat) const { return data_[flat]; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Fills every cell with a constant.
  void fill(float value) { data_.assign(data_.size(), value); }

  float min() const;
  float max() const;
  double mean() const;

 private:
  std::size_t nlat_ = 0;
  std::size_t nlon_ = 0;
  std::vector<float> data_;
};

/// Bilinear interpolation of a field at fractional grid coordinates
/// (row, col); col wraps periodically, row is clamped.
float bilinear_sample(const Field& field, double row, double col);

/// Regrids a field to a new grid size by bilinear interpolation.
Field regrid_bilinear(const Field& src, std::size_t new_nlat, std::size_t new_nlon);

}  // namespace climate::common
