// Fixed-size thread pool with futures, used as the "compute node" substrate
// by the task runtime, the datacube I/O servers, and the ESM decomposition.
//
// Each worker has a stable index (0..size-1) retrievable from inside a task
// via ThreadPool::current_worker(), which the task runtime uses to model data
// locality across simulated nodes.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace climate::common {

/// A fixed pool of worker threads consuming a FIFO queue of jobs.
class ThreadPool {
 public:
  /// Starts `size` workers (at least 1).
  explicit ThreadPool(std::size_t size);
  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the returned future observes its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Blocks until the queue is empty and all in-flight jobs finished.
  void wait_idle();

  /// Index of the pool worker running the calling thread, or -1 if the caller
  /// is not a pool worker.
  static int current_worker();

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// Exceptions from any iteration propagate to the caller (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace climate::common
