// A bounded multi-producer/multi-consumer FIFO queue with non-blocking
// producers: try_push never waits, it reports "full" so the caller can apply
// backpressure (the datacube admission layer rejects with a Result instead
// of blocking unboundedly; bench harnesses drop or retry). Consumers may
// block (pop) or poll (try_pop). close() wakes all blocked consumers and
// makes further pushes fail, which is the shutdown path for worker loops
// draining the queue.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace climate::common {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking; false when the queue is full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues without blocking; nullopt when empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt only on the latter.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes every blocked consumer; already-queued
  /// items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace climate::common
