// Minimal JSON value model with parser and serializer.
//
// Used by the HPCWaaS execution API (request/response payloads), the
// workflow registry, and the container image manifests. Supports the full
// JSON data model (null, bool, number, string, array, object) with UTF-8
// strings passed through verbatim and \uXXXX escapes decoded to UTF-8.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace climate::common {

/// A JSON document node. Value-semantic; nested containers are stored inline.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(std::int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}  // NOLINT
  Json(std::size_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}  // NOLINT
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}  // NOLINT
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}  // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object accessor; inserts a null member when absent (object only).
  Json& operator[](const std::string& key);
  /// Const object lookup; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  /// Array element access.
  Json& operator[](std::size_t index) { return array_[index]; }
  const Json& operator[](std::size_t index) const { return array_[index]; }

  bool contains(const std::string& key) const {
    return is_object() && object_.find(key) != object_.end();
  }
  std::size_t size() const {
    if (is_array()) return array_.size();
    if (is_object()) return object_.size();
    return 0;
  }

  void push_back(Json value) { array_.push_back(std::move(value)); }

  /// Typed lookups with fallback; tolerate missing keys and wrong types.
  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Pretty serialization with two-space indentation.
  std::string dump_pretty() const;

  /// Parses a JSON document. Trailing garbage is an error.
  static Result<Json> parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace climate::common
