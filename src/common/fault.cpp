#include "common/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace climate::common::fault {

namespace {

constexpr const char* kLogTag = "fault";

/// SplitMix64 finalizer: the avalanche stage used for all decision hashing.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Uniform [0,1) from a hash — the Bernoulli draw of rate rules.
double to_unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

bool target_matches(const std::string& pattern, std::string_view target) {
  if (pattern.empty()) return true;
  if (pattern.back() == '*') {
    const std::string_view prefix(pattern.data(), pattern.size() - 1);
    return target.substr(0, prefix.size()) == prefix;
  }
  return pattern == target;
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kTaskError: return "task_error";
    case Kind::kNodeCrash: return "node_crash";
    case Kind::kNodeSlowdown: return "node_slowdown";
    case Kind::kFragmentError: return "fragment_error";
    case Kind::kFragmentDelay: return "fragment_delay";
    case Kind::kDlsError: return "dls_error";
    case Kind::kStepError: return "step_error";
  }
  return "?";
}

Result<Kind> parse_kind(const std::string& name) {
  for (Kind kind : {Kind::kTaskError, Kind::kNodeCrash, Kind::kNodeSlowdown, Kind::kFragmentError,
                    Kind::kFragmentDelay, Kind::kDlsError, Kind::kStepError}) {
    if (name == kind_name(kind)) return kind;
  }
  return Status::InvalidArgument("unknown fault kind '" + name + "'");
}

Result<Plan> Plan::from_json(const Json& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("fault plan must be a JSON object");
  Plan plan;
  plan.seed = static_cast<std::uint64_t>(doc.get_int("seed", 0));
  if (doc.contains("rules")) {
    const Json& rules = doc["rules"];
    if (!rules.is_array()) return Status::InvalidArgument("fault plan 'rules' must be an array");
    for (const Json& entry : rules.as_array()) {
      if (!entry.is_object()) return Status::InvalidArgument("fault rule must be an object");
      Rule rule;
      auto kind = parse_kind(entry.get_string("kind"));
      if (!kind.ok()) return kind.status();
      rule.kind = *kind;
      rule.target = entry.get_string("target");
      rule.rate = entry.get_number("rate", 0.0);
      rule.at = entry.get_int("at", -1);
      rule.max_injections = static_cast<int>(entry.get_int("max", -1));
      rule.delay_ms = entry.get_number("delay_ms", 0.0);
      if (rule.rate < 0.0 || rule.rate > 1.0) {
        return Status::InvalidArgument("fault rule rate must be in [0,1]");
      }
      if (rule.rate == 0.0 && rule.at < 0) {
        return Status::InvalidArgument("fault rule needs 'rate' > 0 or 'at' >= 0");
      }
      plan.rules.push_back(std::move(rule));
    }
  }
  return plan;
}

Result<Plan> Plan::parse(const std::string& text) {
  auto doc = Json::parse(text);
  if (!doc.ok()) return doc.status();
  return from_json(*doc);
}

Json Plan::to_json() const {
  Json doc = Json::object();
  doc["seed"] = static_cast<std::int64_t>(seed);
  Json rules = Json::array();
  for (const Rule& rule : this->rules) {
    Json entry = Json::object();
    entry["kind"] = kind_name(rule.kind);
    if (!rule.target.empty()) entry["target"] = rule.target;
    if (rule.rate > 0.0) entry["rate"] = rule.rate;
    if (rule.at >= 0) entry["at"] = rule.at;
    if (rule.max_injections >= 0) entry["max"] = rule.max_injections;
    if (rule.delay_ms > 0.0) entry["delay_ms"] = rule.delay_ms;
    rules.as_array().push_back(std::move(entry));
  }
  doc["rules"] = std::move(rules);
  return doc;
}

std::string Event::to_string() const {
  std::ostringstream out;
  out << kind_name(kind) << " rule=" << rule << " target=" << target << " key=" << key;
  return out.str();
}

Injector::Injector(Plan plan) : plan_(std::move(plan)), counts_(plan_.rules.size(), 0) {}

std::optional<Action> Injector::fire(Kind kind, std::string_view target, std::int64_t key) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const Rule& rule = plan_.rules[i];
    if (rule.kind != kind || !target_matches(rule.target, target)) continue;

    bool decided = false;
    if (rule.at >= 0) {
      decided = key == rule.at;
    } else {
      // Pure hash of (seed, rule, target, key): interleaving-independent.
      std::uint64_t h = mix(plan_.seed ^ mix(static_cast<std::uint64_t>(i) + 1));
      h = mix(h ^ fnv1a(target));
      h = mix(h ^ static_cast<std::uint64_t>(key));
      decided = to_unit(h) < rule.rate;
    }
    if (!decided) continue;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (rule.max_injections >= 0 && counts_[i] >= rule.max_injections) continue;
      ++counts_[i];
      Event event;
      event.kind = kind;
      event.rule = i;
      event.target = std::string(target);
      event.key = key;
      event.delay_ms = rule.delay_ms;
      events_.push_back(std::move(event));
    }
    Action action;
    action.rule = i;
    action.delay_ms = rule.delay_ms;
    return action;
  }
  return std::nullopt;
}

std::vector<Event> Injector::events() const {
  std::vector<Event> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = events_;
  }
  std::sort(snapshot.begin(), snapshot.end(), [](const Event& a, const Event& b) {
    if (a.kind != b.kind) return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    if (a.rule != b.rule) return a.rule < b.rule;
    if (a.target != b.target) return a.target < b.target;
    return a.key < b.key;
  });
  return snapshot;
}

std::vector<std::string> Injector::event_log() const {
  std::vector<std::string> lines;
  for (const Event& event : events()) lines.push_back(event.to_string());
  return lines;
}

std::uint64_t Injector::injected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::shared_ptr<Injector> Injector::from_env(const char* variable) {
  const char* raw = std::getenv(variable);
  if (raw == nullptr || raw[0] == '\0') return nullptr;
  std::string text(raw);
  if (text[0] == '@') {
    std::ifstream in(text.substr(1));
    if (!in) {
      LOG_WARN(kLogTag) << "cannot open fault plan file '" << text.substr(1) << "'";
      return nullptr;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  auto plan = Plan::parse(text);
  if (!plan.ok()) {
    LOG_WARN(kLogTag) << "ignoring invalid " << variable << " plan: " << plan.status().to_string();
    return nullptr;
  }
  LOG_INFO(kLogTag) << "fault plan armed from " << variable << " (seed " << plan->seed << ", "
                    << plan->rules.size() << " rules)";
  return std::make_shared<Injector>(std::move(*plan));
}

}  // namespace climate::common::fault
