// Map rendering: PGM/PPM image export and ASCII previews of gridded fields.
// Used to regenerate Figure-4-style indicator maps from the benches.
#pragma once

#include <string>

#include "common/grid.hpp"
#include "common/status.hpp"

namespace climate::common {

/// Writes a field as an 8-bit binary PGM, scaling [lo, hi] to [0, 255].
/// Row 0 of the image is the northernmost latitude row.
Status write_pgm(const std::string& path, const Field& field, float lo, float hi);

/// Writes a field as a binary PPM using a blue->white->red diverging colormap
/// centered at (lo+hi)/2.
Status write_ppm_diverging(const std::string& path, const Field& field, float lo, float hi);

/// Renders a coarse ASCII view of a field (about `cols` characters wide),
/// darker characters meaning larger values. North at the top.
std::string ascii_map(const Field& field, std::size_t cols = 72, float lo = 0.0f, float hi = 0.0f);

}  // namespace climate::common
