#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace climate::common {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kHuman)};
std::atomic<LogSpanProvider> g_span_provider{nullptr};
std::mutex g_sink_mutex;

/// Registers an atexit flush of the sink once, on the first emitted record,
/// so buffered stderr (e.g. redirected to a file) is not lost on exit paths
/// that skip stream destructors.
void register_atexit_flush() {
  static const bool registered = [] {
    std::atexit([] { std::fflush(stderr); });
    return true;
  }();
  (void)registered;
}

/// Escapes a string for inclusion in a JSON string literal.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_format(LogFormat format) { g_format.store(static_cast<int>(format)); }

LogFormat log_format() { return static_cast<LogFormat>(g_format.load()); }

std::size_t log_thread_id() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id = next.fetch_add(1);
  return id;
}

void set_log_span_provider(LogSpanProvider provider) { g_span_provider.store(provider); }

LogSpanProvider log_span_provider() { return g_span_provider.load(); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  const std::size_t tid = log_thread_id();
  register_atexit_flush();
  if (log_format() == LogFormat::kJson) {
    std::string line =
        "{\"ts_ms\":" + std::to_string(ms) + ",\"tid\":" + std::to_string(tid) + ",\"level\":\"" +
        std::string(log_level_name(level)) + "\",\"component\":\"" + json_escape(component) +
        "\",\"msg\":\"" + json_escape(message) + "\"";
    if (const LogSpanProvider provider = g_span_provider.load()) {
      if (const std::uint64_t span = provider(); span != 0) {
        line += ",\"span\":" + std::to_string(span);
      }
    }
    line += "}";
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%lld.%03lld] T%02zu %-5s %.*s: %.*s\n", static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), tid, log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace climate::common
