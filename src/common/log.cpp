#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace climate::common {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %-5s %.*s: %.*s\n", static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace climate::common
