// Small string utilities shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace climate::common {

/// Splits on a single-character delimiter; empty tokens are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view separator);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a byte count as a human-readable string ("271.0 MB").
std::string human_bytes(double bytes);

/// FNV-1a 64-bit hash of a byte string (content addressing for the container
/// image layer cache and data-logistics checksums).
std::uint64_t fnv1a64(std::string_view bytes);

/// Hex rendering of a 64-bit value (16 lowercase digits).
std::string hex64(std::uint64_t value);

}  // namespace climate::common
