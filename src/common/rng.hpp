// Deterministic random number generation.
//
// Everything stochastic in the repository (ESM weather noise, event seeding,
// CNN weight init, workload generators) draws from Rng so that tests and
// benchmark rows are reproducible for a given seed.
#pragma once

#include <cstdint>
#include <cmath>

namespace climate::common {

/// SplitMix64-seeded xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
    has_cached_normal_ = false;
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value cached).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derives an independent child generator (for per-shard determinism).
  Rng split() { return Rng(next_u64() ^ 0xA3C59AC2B799ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace climate::common
