#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace climate::common {
namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> parse_document() {
    skip_ws();
    Json value;
    Status st = parse_value(value);
    if (!st.ok()) return st;
    skip_ws();
    if (pos_ != text_.size()) return Status::InvalidArgument("trailing characters at offset " + std::to_string(pos_));
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  Status error(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " + std::to_string(pos_));
  }

  Status parse_value(Json& out) {
    if (pos_ >= text_.size()) return error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        CLIMATE_RETURN_IF_ERROR(parse_string(s));
        out = Json(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) { pos_ += 4; out = Json(true); return Status::Ok(); }
        return error("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) { pos_ += 5; out = Json(false); return Status::Ok(); }
        return error("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) { pos_ += 4; out = Json(nullptr); return Status::Ok(); }
        return error("invalid literal");
      default: return parse_number(out);
    }
  }

  Status parse_object(Json& out) {
    ++pos_;  // '{'
    Json::Object object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; out = Json(std::move(object)); return Status::Ok(); }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return error("expected object key");
      std::string key;
      CLIMATE_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return error("expected ':'");
      ++pos_;
      skip_ws();
      Json value;
      CLIMATE_RETURN_IF_ERROR(parse_value(value));
      object[std::move(key)] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return error("unterminated object");
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; break; }
      return error("expected ',' or '}'");
    }
    out = Json(std::move(object));
    return Status::Ok();
  }

  Status parse_array(Json& out) {
    ++pos_;  // '['
    Json::Array array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; out = Json(std::move(array)); return Status::Ok(); }
    while (true) {
      skip_ws();
      Json value;
      CLIMATE_RETURN_IF_ERROR(parse_value(value));
      array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return error("unterminated array");
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; break; }
      return error("expected ',' or ']'");
    }
    out = Json(std::move(array));
    return Status::Ok();
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          CLIMATE_RETURN_IF_ERROR(parse_hex4(code));
          // Decode surrogate pairs.
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
              text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            CLIMATE_RETURN_IF_ERROR(parse_hex4(low));
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: return error("invalid escape");
      }
    }
    return error("unterminated string");
  }

  Status parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return error("invalid hex digit");
    }
    return Status::Ok();
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') { ++pos_; eat_digits(); }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!any) return error("invalid number");
    out = Json(std::strtod(text_.c_str() + start, nullptr));
    return Status::Ok();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) {
    *this = Json::object();
  }
  return object_[key];
}

const Json& Json::operator[](const std::string& key) const {
  if (type_ != Type::kObject) return null_json();
  auto it = object_.find(key);
  if (it == object_.end()) return null_json();
  return it->second;
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.as_string() : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.as_number() : fallback;
}

std::int64_t Json::get_int(const std::string& key, std::int64_t fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.as_int() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json& v = (*this)[key];
  return v.is_bool() ? v.as_bool() : fallback;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        append_escaped(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

Result<Json> Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

}  // namespace climate::common
